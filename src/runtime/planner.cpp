#include "runtime/planner.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "kernels/backend.hpp"
#include "kernels/generator.hpp"
#include "kernels/primitives.hpp"
#include "kernels/program_cache.hpp"
#include "runtime/slab.hpp"
#include "support/error.hpp"
#include "vcl/cost_model.hpp"

namespace dfg::runtime {

namespace {

/// Resolves the 0 = "process default" sentinel of the public estimators:
/// an engine-less caller executes launch_program under the DFGEN_BACKEND
/// backend, so that is the efficiency its measured simulated time carries.
double resolve_efficiency(double requested) {
  if (requested > 0.0) return requested;
  return kernels::backend_for(kernels::default_backend_kind())
      ->compute_efficiency();
}

/// True when `residency` marks the node as a warm field input (its device
/// buffer already exists, so a strategy neither allocates nor uploads it).
bool warm_field(const dataflow::NetworkSpec& spec, int id,
                const Residency* residency) {
  if (residency == nullptr) return false;
  const dataflow::SpecNode& node = spec.node(id);
  return node.type == dataflow::NodeType::field_source &&
         residency->is_warm(node.field_name);
}

/// Floats a node's value occupies on the host / in a device buffer.
std::size_t value_floats(const dataflow::NetworkSpec& spec, int id,
                         const FieldBindings& bindings,
                         std::size_t elements) {
  const dataflow::SpecNode& node = spec.node(id);
  switch (node.type) {
    case dataflow::NodeType::field_source:
      return bindings.get(node.field_name).size();
    case dataflow::NodeType::constant:
      return elements;
    case dataflow::NodeType::filter:
      return elements * (node.components == 1 ? 1 : 4);
  }
  return 0;
}

std::size_t roundtrip_high_water(const dataflow::Network& network,
                                 const FieldBindings& bindings,
                                 std::size_t elements,
                                 const Residency* residency) {
  const auto& spec = network.spec();
  std::size_t peak_floats = 0;
  for (const dataflow::SpecNode& node : spec.nodes()) {
    if (node.type != dataflow::NodeType::filter) continue;
    if (node.kind == "decompose") continue;  // host-side slicing
    std::size_t kernel_floats = 0;
    for (const int in : node.inputs) {
      if (warm_field(spec, in, residency)) continue;  // resident already
      kernel_floats += value_floats(spec, in, bindings, elements);
    }
    kernel_floats += elements * (node.components == 1 ? 1 : 4);
    peak_floats = std::max(peak_floats, kernel_floats);
  }
  return peak_floats * sizeof(float);
}

std::size_t staged_high_water(const dataflow::Network& network,
                              const FieldBindings& bindings,
                              std::size_t elements,
                              const Residency* residency) {
  // Replays StagedStrategy's allocation discipline: lazy source
  // materialisation at first consumer, output allocation before input
  // release, reference-counted release after each filter.
  const auto& spec = network.spec();
  std::vector<int> refs = network.use_counts();
  std::vector<bool> live(spec.nodes().size(), false);
  std::vector<std::size_t> floats(spec.nodes().size(), 0);
  std::size_t current = 0;
  std::size_t peak = 0;

  const auto materialise = [&](int id) {
    if (live[id]) return;
    floats[id] = warm_field(spec, id, residency)
                     ? 0
                     : value_floats(spec, id, bindings, elements);
    current += floats[id];
    peak = std::max(peak, current);
    live[id] = true;
  };

  for (const int id : network.topo_order()) {
    const dataflow::SpecNode& node = spec.node(id);
    if (node.type != dataflow::NodeType::filter) continue;
    for (const int in : node.inputs) materialise(in);
    materialise(id);  // the filter's output buffer
    for (const int in : node.inputs) {
      if (--refs[in] == 0) {
        current -= floats[in];
        live[in] = false;
      }
    }
  }
  const int out_id = spec.output_id();
  if (!live[out_id]) materialise(out_id);
  return peak * sizeof(float);
}

std::size_t fusion_high_water(const dataflow::Network& network,
                              const FieldBindings& bindings,
                              std::size_t elements,
                              const Residency* residency) {
  // Covers both the single-kernel case (inputs + output) and the
  // partitioned pipeline, whose materialised intermediates stay on the
  // device for the whole run. The cached pipeline is the very object the
  // fusion strategy executes, so the estimate replays its exact programs.
  const std::shared_ptr<const kernels::FusedPipeline> pipeline =
      kernels::ProgramCache::instance().fused_pipeline(network);
  std::set<std::string> fields;
  std::size_t floats = 0;
  for (const kernels::FusedPipeline::Stage& stage : pipeline->stages) {
    floats += elements * stage.program.out_stride();
    for (const kernels::BufferParam& param : stage.program.params()) {
      if (param.name.rfind("__m", 0) == 0) continue;  // a stage output
      if (fields.insert(param.name).second &&
          (residency == nullptr || !residency->is_warm(param.name))) {
        floats += bindings.get(param.name).size();
      }
    }
  }
  return floats * sizeof(float);
}

/// Replicates StreamedFusionStrategy's chunk sizing for an explicit cell
/// budget (0 -> one plane).
std::size_t planes_for_chunk(const SlabPlan& plan, std::size_t chunk_cells) {
  if (chunk_cells == 0) return 1;
  std::size_t planes =
      chunk_cells / std::max<std::size_t>(plan.plane_cells, 1);
  if (planes > 2 * plan.halo) {
    planes -= 2 * plan.halo;
  } else {
    planes = 1;
  }
  return std::min(std::max<std::size_t>(planes, 1), plan.total_planes);
}


std::size_t streamed_high_water(const dataflow::Network& network,
                                const FieldBindings& bindings,
                                std::size_t elements,
                                std::size_t chunk_cells) {
  const std::shared_ptr<const kernels::Program> program_ptr =
      kernels::ProgramCache::instance().fused_single(network);
  const kernels::Program& program = *program_ptr;
  const SlabPlan plan = make_slab_plan(program, bindings, elements);

  const std::size_t chunk_planes = planes_for_chunk(plan, chunk_cells);
  // The peak is the largest slab over the chunk sequence; boundary chunks
  // clamp their halo at the domain faces exactly as run_fused_slab does.
  std::size_t max_slab_planes = 0;
  for (std::size_t begin = 0; begin < plan.total_planes;
       begin += chunk_planes) {
    const std::size_t end = std::min(plan.total_planes, begin + chunk_planes);
    const std::size_t slab_lo = begin > plan.halo ? begin - plan.halo : 0;
    const std::size_t slab_hi = std::min(plan.total_planes, end + plan.halo);
    max_slab_planes = std::max(max_slab_planes, slab_hi - slab_lo);
  }
  const std::size_t slab_cells = max_slab_planes * plan.plane_cells;
  const std::size_t dims_params =
      program.params().size() - plan.slabbed_params;
  const std::size_t floats = plan.slabbed_params * slab_cells +
                             dims_params * 3 +
                             slab_cells * program.out_stride();
  return floats * sizeof(float);
}

/// Replays FusionStrategy's command stream: unique field uploads at first
/// use, one kernel per pipeline stage, one readback of the final stage's
/// buffer.
double fusion_sim_seconds(const dataflow::Network& network,
                          const FieldBindings& bindings,
                          std::size_t elements, const vcl::CostModel& cost,
                          const Residency* residency, double efficiency) {
  const std::shared_ptr<const kernels::FusedPipeline> pipeline =
      kernels::ProgramCache::instance().fused_pipeline(network);
  std::set<std::string> fields;
  double seconds = 0.0;
  std::size_t final_stride = 1;
  for (const kernels::FusedPipeline::Stage& stage : pipeline->stages) {
    for (const kernels::BufferParam& param : stage.program.params()) {
      if (param.name.rfind("__m", 0) == 0) continue;  // a stage output
      if (fields.insert(param.name).second &&
          (residency == nullptr || !residency->is_warm(param.name))) {
        seconds += cost.transfer_seconds(bindings.get(param.name).size() *
                                         sizeof(float));
      }
    }
    seconds += cost.kernel_seconds(
        stage.program.flops_per_item() * elements,
        stage.program.global_bytes_per_item() * elements,
        stage.program.max_live_scalar_registers(), efficiency);
    if (stage.node_id == network.output_id()) {
      final_stride = stage.program.out_stride();
    }
  }
  seconds += cost.transfer_seconds(elements * final_stride * sizeof(float));
  return seconds;
}

/// Replays StagedStrategy's command stream: lazy source materialisation
/// (field upload or const_fill kernel at first consumer), one standalone
/// kernel per filter, one readback of the output buffer.
double staged_sim_seconds(const dataflow::Network& network,
                          const FieldBindings& bindings,
                          std::size_t elements, const vcl::CostModel& cost,
                          const Residency* residency, double efficiency) {
  const auto& spec = network.spec();
  std::vector<bool> materialised(spec.nodes().size(), false);
  double seconds = 0.0;

  const auto materialise_source = [&](int id) {
    if (materialised[id]) return;
    materialised[id] = true;
    const dataflow::SpecNode& node = spec.node(id);
    if (node.type == dataflow::NodeType::field_source) {
      if (warm_field(spec, id, residency)) return;  // no upload
      seconds += cost.transfer_seconds(bindings.get(node.field_name).size() *
                                       sizeof(float));
    } else {  // constant: one fill kernel
      const std::shared_ptr<const kernels::Program> fill =
          kernels::ProgramCache::instance().standalone(
              "const_fill", 0, static_cast<float>(node.const_value));
      seconds += cost.kernel_seconds(
          fill->flops_per_item() * elements,
          fill->global_bytes_per_item() * elements,
          fill->max_live_scalar_registers(), efficiency);
    }
  };

  for (const int id : network.topo_order()) {
    const dataflow::SpecNode& node = spec.node(id);
    if (node.type != dataflow::NodeType::filter) continue;
    for (const int in : node.inputs) {
      if (spec.node(in).type != dataflow::NodeType::filter) {
        materialise_source(in);
      }
    }
    const std::shared_ptr<const kernels::Program> program =
        kernels::ProgramCache::instance().standalone(node.kind,
                                                     node.component);
    seconds += cost.kernel_seconds(
        program->flops_per_item() * elements,
        program->global_bytes_per_item() * elements,
        program->max_live_scalar_registers(), efficiency);
    materialised[id] = true;
  }

  const int out_id = spec.output_id();
  if (!materialised[out_id]) materialise_source(out_id);
  seconds += cost.transfer_seconds(
      value_floats(spec, out_id, bindings, elements) * sizeof(float));
  return seconds;
}

/// Replays RoundtripStrategy's command stream: per filter (decompose is
/// host-side slicing), one upload per argument occurrence, the kernel, and
/// a readback of the result.
double roundtrip_sim_seconds(const dataflow::Network& network,
                             const FieldBindings& bindings,
                             std::size_t elements,
                             const vcl::CostModel& cost,
                             const Residency* residency, double efficiency) {
  const auto& spec = network.spec();
  double seconds = 0.0;
  for (const int id : network.topo_order()) {
    const dataflow::SpecNode& node = spec.node(id);
    if (node.type != dataflow::NodeType::filter) continue;
    if (node.kind == "decompose") continue;  // host-side slicing
    for (const int in : node.inputs) {
      if (warm_field(spec, in, residency)) continue;  // resident already
      seconds += cost.transfer_seconds(
          value_floats(spec, in, bindings, elements) * sizeof(float));
    }
    const std::shared_ptr<const kernels::Program> program =
        kernels::ProgramCache::instance().standalone(node.kind,
                                                     node.component);
    seconds += cost.kernel_seconds(
        program->flops_per_item() * elements,
        program->global_bytes_per_item() * elements,
        program->max_live_scalar_registers(), efficiency);
    seconds += cost.transfer_seconds(elements * program->out_stride() *
                                     sizeof(float));
  }
  return seconds;
}

}  // namespace

std::vector<vcl::ChunkCost> streamed_chunk_costs(
    const dataflow::Network& network, const FieldBindings& bindings,
    std::size_t elements, const vcl::DeviceSpec& spec,
    std::size_t chunk_cells, double compute_efficiency) {
  const double efficiency = resolve_efficiency(compute_efficiency);
  const std::shared_ptr<const kernels::Program> program_ptr =
      kernels::ProgramCache::instance().fused_single(network);
  const kernels::Program& program = *program_ptr;
  const SlabPlan plan = make_slab_plan(program, bindings, elements);
  const std::size_t chunk_planes = planes_for_chunk(plan, chunk_cells);
  const std::size_t dims_params =
      program.params().size() - plan.slabbed_params;
  const vcl::CostModel cost(spec);

  std::vector<vcl::ChunkCost> chunks;
  for (std::size_t begin = 0; begin < plan.total_planes;
       begin += chunk_planes) {
    const std::size_t end = std::min(plan.total_planes, begin + chunk_planes);
    const std::size_t slab_lo = begin > plan.halo ? begin - plan.halo : 0;
    const std::size_t slab_hi = std::min(plan.total_planes, end + plan.halo);
    const std::size_t slab_cells = (slab_hi - slab_lo) * plan.plane_cells;

    vcl::ChunkCost chunk;
    // One transfer per parameter, each paying the link latency, exactly
    // like run_fused_slab's per-buffer writes.
    for (std::size_t p = 0; p < plan.slabbed_params; ++p) {
      chunk.upload += cost.transfer_seconds(slab_cells * sizeof(float));
    }
    for (std::size_t p = 0; p < dims_params; ++p) {
      chunk.upload += cost.transfer_seconds(3 * sizeof(float));
    }
    chunk.kernel = cost.kernel_seconds(
        program.flops_per_item() * slab_cells,
        program.global_bytes_per_item() * slab_cells,
        program.max_live_scalar_registers(), efficiency);
    chunk.read = cost.transfer_seconds(slab_cells * program.out_stride() *
                                       sizeof(float));
    chunks.push_back(chunk);
  }
  return chunks;
}

Residency Residency::probe(const vcl::Device& device,
                           const FieldBindings& bindings,
                           const dataflow::Network& network) {
  Residency res;
  const vcl::ResidentPool& pool = device.resident();
  if (!pool.enabled()) return res;
  for (const dataflow::SpecNode& node : network.spec().nodes()) {
    if (node.type != dataflow::NodeType::field_source) continue;
    if (!bindings.has(node.field_name)) continue;
    if (pool.would_hit(bindings.get(node.field_name))) {
      res.warm.insert(node.field_name);
    }
  }
  return res;
}

std::size_t estimate_high_water(const dataflow::Network& network,
                                const FieldBindings& bindings,
                                std::size_t elements, StrategyKind kind,
                                std::size_t streamed_chunk_cells,
                                const Residency* residency) {
  switch (kind) {
    case StrategyKind::roundtrip:
      return roundtrip_high_water(network, bindings, elements, residency);
    case StrategyKind::staged:
      return staged_high_water(network, bindings, elements, residency);
    case StrategyKind::fusion:
      return fusion_high_water(network, bindings, elements, residency);
    case StrategyKind::streamed:
      // Residency-unaware by design (see Residency's comment).
      return streamed_high_water(network, bindings, elements,
                                 streamed_chunk_cells);
  }
  throw Error("unknown strategy kind");
}

double estimate_sim_seconds(const dataflow::Network& network,
                            const FieldBindings& bindings,
                            std::size_t elements, const vcl::DeviceSpec& spec,
                            StrategyKind kind,
                            std::size_t streamed_chunk_cells,
                            const Residency* residency,
                            double compute_efficiency) {
  const double efficiency = resolve_efficiency(compute_efficiency);
  const vcl::CostModel cost(spec);
  switch (kind) {
    case StrategyKind::fusion:
      return fusion_sim_seconds(network, bindings, elements, cost, residency,
                                efficiency);
    case StrategyKind::staged:
      return staged_sim_seconds(network, bindings, elements, cost, residency,
                                efficiency);
    case StrategyKind::roundtrip:
      return roundtrip_sim_seconds(network, bindings, elements, cost,
                                   residency, efficiency);
    case StrategyKind::streamed:
      try {
        double seconds = 0.0;
        for (const vcl::ChunkCost& chunk :
             streamed_chunk_costs(network, bindings, elements, spec,
                                  streamed_chunk_cells, efficiency)) {
          seconds += chunk.upload + chunk.kernel + chunk.read;
        }
        return seconds;
      } catch (const KernelError&) {
        // Streamed cannot execute this network; the ladder would land on a
        // neighbouring rung, whose cost is close enough for budgeting.
        return fusion_sim_seconds(network, bindings, elements, cost,
                                  residency, efficiency);
      }
  }
  throw Error("unknown strategy kind");
}

StrategyKind select_strategy(const dataflow::Network& network,
                             const FieldBindings& bindings,
                             std::size_t elements,
                             const vcl::Device& device) {
  // Effective headroom: the tracker's free memory clamped by any injected
  // synthetic capacity, so selection agrees with what allocation enforces.
  const std::size_t free_bytes = device.effective_available();
  std::size_t smallest = SIZE_MAX;
  // Preference order by measured simulated runtime. Streamed is skipped
  // (KernelError) on networks it cannot execute, e.g. gradients of
  // computed values.
  for (const StrategyKind kind :
       {StrategyKind::fusion, StrategyKind::streamed, StrategyKind::staged,
        StrategyKind::roundtrip}) {
    std::size_t needed;
    try {
      needed = estimate_high_water(network, bindings, elements, kind);
    } catch (const KernelError&) {
      continue;
    }
    if (needed <= free_bytes) return kind;
    smallest = std::min(smallest, needed);
  }
  throw DeviceOutOfMemory(device.spec().name, smallest,
                          device.memory().in_use(),
                          device.memory().capacity());
}

StrategyKind select_fastest_strategy(const dataflow::Network& network,
                                     const FieldBindings& bindings,
                                     std::size_t elements,
                                     const vcl::Device& device,
                                     const Residency* residency,
                                     double compute_efficiency) {
  const double efficiency = resolve_efficiency(compute_efficiency);
  const std::size_t free_bytes = device.effective_available();
  bool found = false;
  StrategyKind best = StrategyKind::roundtrip;
  double best_seconds = 0.0;
  std::size_t smallest = SIZE_MAX;
  // Iterate in select_strategy's preference order so equal-cost candidates
  // resolve identically (strict < keeps the earlier rung).
  for (const StrategyKind kind :
       {StrategyKind::fusion, StrategyKind::streamed, StrategyKind::staged,
        StrategyKind::roundtrip}) {
    std::size_t needed;
    try {
      needed = estimate_high_water(network, bindings, elements, kind, 0,
                                   residency);
    } catch (const KernelError&) {
      continue;
    }
    if (needed > free_bytes) {
      smallest = std::min(smallest, needed);
      continue;
    }
    const double seconds =
        estimate_sim_seconds(network, bindings, elements, device.spec(), kind,
                             0, residency, efficiency);
    if (!found || seconds < best_seconds) {
      found = true;
      best = kind;
      best_seconds = seconds;
    }
  }
  if (!found) {
    throw DeviceOutOfMemory(device.spec().name, smallest,
                            device.memory().in_use(),
                            device.memory().capacity());
  }
  return best;
}

}  // namespace dfg::runtime
