#include "runtime/bindings.hpp"

#include "support/error.hpp"
#include "vcl/resident_pool.hpp"

namespace dfg::runtime {

FieldBindings::~FieldBindings() {
  for (const auto& [name, values] : owned_) {
    vcl::note_host_mutation(values.data());
  }
}

void FieldBindings::bind(const std::string& name,
                         std::span<const float> values) {
  if (name.empty()) {
    throw NetworkError("cannot bind an array to an empty field name");
  }
  arrays_[name] = values;
}

void FieldBindings::bind_owned(const std::string& name,
                               std::vector<float> values) {
  const auto it = owned_.find(name);
  if (it != owned_.end()) {
    // The replaced array's storage is about to be freed; retire its tag.
    vcl::note_host_mutation(it->second.data());
  }
  owned_[name] = std::move(values);
  bind(name, owned_[name]);
}

void FieldBindings::bind_mesh(const mesh::RectilinearMesh& mesh) {
  bind_owned("x", mesh.cell_center_array(0));
  bind_owned("y", mesh.cell_center_array(1));
  bind_owned("z", mesh.cell_center_array(2));
  bind_owned("dims", mesh.dims_array());
}

bool FieldBindings::has(const std::string& name) const {
  return arrays_.count(name) != 0;
}

std::span<const float> FieldBindings::get(const std::string& name) const {
  const auto it = arrays_.find(name);
  if (it == arrays_.end()) {
    throw NetworkError("expression references unbound field '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> FieldBindings::names() const {
  std::vector<std::string> out;
  out.reserve(arrays_.size());
  for (const auto& [name, view] : arrays_) out.push_back(name);
  return out;
}

}  // namespace dfg::runtime
