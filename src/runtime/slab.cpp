#include "runtime/slab.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "kernels/vm.hpp"
#include "runtime/strategy.hpp"
#include "support/error.hpp"
#include "vcl/buffer.hpp"
#include "vcl/queue.hpp"

namespace dfg::runtime {

namespace {

/// Parameter slots holding the grad3d `dims` argument (3 floats, rewritten
/// per slab rather than slabbed).
std::set<std::uint16_t> dims_slots(const kernels::Program& program) {
  std::set<std::uint16_t> slots;
  for (const kernels::Instr& instr : program.code()) {
    if (instr.op == kernels::Op::grad3d) slots.insert(instr.args[1]);
  }
  return slots;
}

}  // namespace

SlabPlan make_slab_plan(const kernels::Program& program,
                        const FieldBindings& bindings, std::size_t elements) {
  SlabPlan plan;
  const std::set<std::uint16_t> dims = dims_slots(program);
  plan.slabbed_params = program.params().size() - dims.size();
  if (dims.empty()) {
    plan.plane_cells = 1;
    plan.total_planes = elements;
    plan.halo = 0;
    return plan;
  }

  // All grad3d invocations in one network share the same grid; read the
  // shape from the first dims binding.
  const std::string& dims_name =
      program.params()[*dims.begin()].name;
  const auto dims_view = bindings.get(dims_name);
  if (dims_view.size() < 3) {
    throw NetworkError("dims binding '" + dims_name +
                       "' must hold 3 values for streamed execution");
  }
  plan.nx = static_cast<std::size_t>(dims_view[0]);
  plan.ny = static_cast<std::size_t>(dims_view[1]);
  plan.nz = static_cast<std::size_t>(dims_view[2]);
  if (plan.nx * plan.ny * plan.nz != elements) {
    throw NetworkError(
        "streamed execution requires elements == nx*ny*nz; got " +
        std::to_string(elements));
  }
  plan.plane_cells = plan.nx * plan.ny;
  plan.total_planes = plan.nz;
  plan.halo = 1;
  return plan;
}

std::vector<SlabParam> resolve_slab_params(const kernels::Program& program,
                                           const FieldBindings& bindings) {
  const std::set<std::uint16_t> dims = dims_slots(program);
  std::vector<SlabParam> params;
  params.reserve(program.params().size());
  for (std::size_t slot = 0; slot < program.params().size(); ++slot) {
    SlabParam param;
    param.name = program.params()[slot].name;
    param.is_dims = dims.count(static_cast<std::uint16_t>(slot)) != 0;
    if (!param.is_dims) param.view = bindings.get(param.name);
    params.push_back(std::move(param));
  }
  return params;
}

void run_fused_slab(const kernels::Program& program,
                    std::span<const SlabParam> params, const SlabPlan& plan,
                    std::size_t begin_plane, std::size_t end_plane,
                    vcl::Device& device, vcl::ProfilingLog& log,
                    std::span<float> out_global) {
  if (begin_plane >= end_plane || end_plane > plan.total_planes) {
    throw NetworkError("invalid slab plane range");
  }
  if (out_global.size() < plan.total_elements()) {
    throw NetworkError("slab output array smaller than the global grid");
  }

  const std::size_t slab_lo =
      begin_plane > plan.halo ? begin_plane - plan.halo : 0;
  const std::size_t slab_hi =
      std::min(plan.total_planes, end_plane + plan.halo);
  const std::size_t slab_planes = slab_hi - slab_lo;
  const std::size_t slab_cells = slab_planes * plan.plane_cells;

  vcl::CommandQueue queue(device, log);
  // Resident sub-range buffers must stay evictable *between* chunks (a
  // scan larger than the pool watermark recycles LRU slabs) but pinned
  // while this chunk's kernel can still read them.
  vcl::ResidentPool::PinScope slab_pins(device.resident());

  // The per-slab dims array: local plane count, same transverse shape.
  const std::vector<float> local_dims{static_cast<float>(plan.nx),
                                      static_cast<float>(plan.ny),
                                      static_cast<float>(slab_planes)};

  std::vector<StagedInput> inputs;
  std::vector<kernels::BufferBinding> vm_bindings;
  inputs.reserve(params.size());
  vm_bindings.reserve(params.size());
  for (const SlabParam& param : params) {
    if (param.is_dims) {
      // The dims array is a stack temporary rewritten per slab: never
      // pool-eligible.
      vcl::Buffer buffer = device.allocate(3);
      queue.write(buffer, local_dims, param.name + "@slab");
      vm_bindings.push_back(kernels::BufferBinding{
          buffer.device_view().data(), buffer.size()});
      StagedInput staged;
      staged.owned = std::move(buffer);
      inputs.push_back(std::move(staged));
      continue;
    }
    const std::size_t offset = slab_lo * plan.plane_cells;
    if (param.view.size() < offset + slab_cells) {
      throw NetworkError("field '" + param.name +
                         "' too small for the requested slab");
    }
    // Sub-range uploads key the pool on the slab pointer but follow the
    // *base* array's generation tag, so mutating the bound field
    // invalidates every one of its slabs.
    StagedInput staged =
        stage_input(queue, param.view.subspan(offset, slab_cells),
                    param.name + "@slab", /*poolable=*/true,
                    /*generation_key=*/param.view.data());
    vm_bindings.push_back(staged.binding);
    inputs.push_back(std::move(staged));
  }

  vcl::Buffer out_buffer =
      device.allocate(slab_cells * program.out_stride());
  launch_program(queue, program, std::move(vm_bindings),
                 out_buffer.device_view(), slab_cells);

  // Read the whole slab back (one transfer) and keep the interior planes.
  std::vector<float> slab_result(out_buffer.size());
  queue.read(out_buffer, slab_result, program.name() + "@slab");
  const std::size_t interior_offset =
      (begin_plane - slab_lo) * plan.plane_cells;
  const std::size_t interior_cells =
      (end_plane - begin_plane) * plan.plane_cells;
  std::copy_n(slab_result.begin() + static_cast<long>(interior_offset),
              interior_cells,
              out_global.begin() +
                  static_cast<long>(begin_plane * plan.plane_cells));
}

void run_fused_slab(const kernels::Program& program,
                    const FieldBindings& bindings, const SlabPlan& plan,
                    std::size_t begin_plane, std::size_t end_plane,
                    vcl::Device& device, vcl::ProfilingLog& log,
                    std::span<float> out_global) {
  const std::vector<SlabParam> params =
      resolve_slab_params(program, bindings);
  run_fused_slab(program, params, plan, begin_plane, end_plane, device, log,
                 out_global);
}

}  // namespace dfg::runtime
