#include "runtime/multidevice.hpp"

#include <algorithm>
#include <memory>

#include "kernels/generator.hpp"
#include "kernels/program_cache.hpp"
#include "runtime/slab.hpp"
#include "support/error.hpp"

namespace dfg::runtime {

MultiDeviceReport execute_multi_device_fusion(
    const dataflow::Network& network, const FieldBindings& bindings,
    std::size_t elements, std::vector<vcl::Device*> devices,
    std::vector<vcl::ProfilingLog>& logs) {
  if (devices.empty()) {
    throw NetworkError("multi-device execution requires at least one device");
  }
  if (logs.size() != devices.size()) {
    throw NetworkError("multi-device execution needs one log per device");
  }

  const std::shared_ptr<const kernels::Program> program_ptr =
      kernels::ProgramCache::instance().fused_single(network);
  const kernels::Program& program = *program_ptr;
  const SlabPlan plan = make_slab_plan(program, bindings, elements);
  const std::vector<SlabParam> params =
      resolve_slab_params(program, bindings);

  MultiDeviceReport report;
  report.values.assign(elements, 0.0f);

  // Contiguous plane ranges, near-even split; trailing devices may idle
  // when there are fewer planes than devices.
  const std::size_t device_count = devices.size();
  const std::size_t base = plan.total_planes / device_count;
  const std::size_t extra = plan.total_planes % device_count;
  std::size_t begin = 0;
  for (std::size_t d = 0; d < device_count; ++d) {
    const std::size_t span = base + (d < extra ? 1 : 0);
    if (span == 0) continue;
    const std::size_t end = begin + span;
    run_fused_slab(program, params, plan, begin, end, *devices[d],
                   logs[d], report.values);
    begin = end;
    ++report.devices_used;
  }

  report.device_sim_seconds.reserve(device_count);
  for (const vcl::ProfilingLog& log : logs) {
    const double sim = log.total_sim_seconds();
    report.device_sim_seconds.push_back(sim);
    report.critical_path_sim_seconds =
        std::max(report.critical_path_sim_seconds, sim);
    report.aggregate_sim_seconds += sim;
  }
  return report;
}

}  // namespace dfg::runtime
