// Runtime layer: slab execution of fused kernels.
//
// Shared machinery for the two execution modes the paper lists as future
// work — streaming on one device and multi-device execution on one node.
// A fused kernel is run over a contiguous range of z-planes: each buffer
// parameter uploads only its slab sub-range (plus halo planes when the
// kernel contains gradients, whose stencil reaches one plane up and down),
// the kernel executes over the slab, and only the interior planes of the
// result are kept. The gradient's `dims` argument is rewritten per slab so
// the stencil arithmetic sees the local plane count.
//
// Correctness at chunk boundaries: interior planes always have both
// stencil neighbours inside the slab, so their results are bit-identical
// to a whole-grid run; the halo planes' own outputs (which would use
// one-sided differences at slab edges) are discarded.
#pragma once

#include <cstddef>
#include <span>

#include "kernels/program.hpp"
#include "runtime/bindings.hpp"
#include "vcl/device.hpp"
#include "vcl/profiling.hpp"

namespace dfg::runtime {

/// How a fused program's NDRange decomposes into planes.
struct SlabPlan {
  /// Cells per plane: nx*ny for gradient kernels, 1 for pure elementwise
  /// programs (which may chunk at any element granularity).
  std::size_t plane_cells = 1;
  /// Total planes: nz, or the element count for elementwise programs.
  std::size_t total_planes = 0;
  /// Halo planes required on each side of a slab (1 with gradients).
  std::size_t halo = 0;
  /// Grid dims (meaningful when halo > 0).
  std::size_t nx = 0, ny = 0, nz = 0;
  /// Number of problem-sized buffer parameters (excludes dims).
  std::size_t slabbed_params = 0;

  std::size_t total_elements() const { return plane_cells * total_planes; }
};

/// Analyses a fused program against the bindings: detects gradient usage
/// (via its dims argument), validates the grid shape, and returns the plane
/// decomposition. Throws NetworkError when a gradient program's dims
/// binding is missing or inconsistent with `elements`.
SlabPlan make_slab_plan(const kernels::Program& program,
                        const FieldBindings& bindings, std::size_t elements);

/// One buffer parameter of a program resolved for slab execution: the
/// bound host view (name lookups done once per program, not once per slab)
/// and whether the slot carries a grad3d `dims` argument, which is
/// rewritten per slab rather than slabbed.
struct SlabParam {
  std::string name;
  bool is_dims = false;
  std::span<const float> view;  ///< empty for dims slots
};

/// Resolves every parameter of `program` against `bindings` exactly once
/// (the string-keyed lookups that used to run per slab). Throws
/// NetworkError on unbound fields.
std::vector<SlabParam> resolve_slab_params(const kernels::Program& program,
                                           const FieldBindings& bindings);

/// Executes `program` over planes [begin_plane, end_plane), uploading slab
/// sub-ranges of every parameter, dispatching one kernel, and copying the
/// interior result into out_global (a full-size array indexed by global
/// cell id). All traffic is profiled against `log`; allocations count
/// against `device` and are released before returning. `params` must come
/// from resolve_slab_params on the same program.
void run_fused_slab(const kernels::Program& program,
                    std::span<const SlabParam> params, const SlabPlan& plan,
                    std::size_t begin_plane, std::size_t end_plane,
                    vcl::Device& device, vcl::ProfilingLog& log,
                    std::span<float> out_global);

/// Convenience overload resolving the bindings itself (one-shot callers).
void run_fused_slab(const kernels::Program& program,
                    const FieldBindings& bindings, const SlabPlan& plan,
                    std::size_t begin_plane, std::size_t end_plane,
                    vcl::Device& device, vcl::ProfilingLog& log,
                    std::span<float> out_global);

}  // namespace dfg::runtime
