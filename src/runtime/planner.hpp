// Runtime layer: memory planning and automatic strategy selection.
//
// The paper's discussion (§V-D) concludes that hosts must "select from
// multiple execution strategies and target devices" under memory
// constraints. This module makes that selection analytical: it predicts
// each strategy's device-memory high-water mark from the network alone —
// no execution, no trial allocation — by replaying the exact allocation
// discipline each strategy implements. Predictions are bit-for-bit equal
// to the tracker's measured high-water (locked in by tests), so a host can
// pick the fastest strategy that fits before moving a single byte.
#pragma once

#include <cstddef>

#include <vector>

#include "dataflow/network.hpp"
#include "runtime/bindings.hpp"
#include "runtime/strategy.hpp"
#include "vcl/device.hpp"
#include "vcl/pipeline.hpp"

namespace dfg::runtime {

/// Predicted device-memory high-water mark (bytes) of executing `network`
/// over `elements` cells under `kind`. For the streamed strategy the
/// prediction assumes the given chunk size (0 = the minimal viable chunk,
/// i.e. the strategy's memory floor). Bindings are consulted for array
/// extents only; no data is read.
std::size_t estimate_high_water(const dataflow::Network& network,
                                const FieldBindings& bindings,
                                std::size_t elements, StrategyKind kind,
                                std::size_t streamed_chunk_cells = 0);

/// Per-chunk (upload, kernel, read) durations of streamed execution under
/// `spec`'s cost model, for overlap analysis with vcl::pipeline_makespan.
/// The serial sum of these costs equals the streamed strategy's simulated
/// time on that device exactly (same cost model, same event sequence).
/// `chunk_cells` = 0 chunks one plane at a time.
std::vector<vcl::ChunkCost> streamed_chunk_costs(
    const dataflow::Network& network, const FieldBindings& bindings,
    std::size_t elements, const vcl::DeviceSpec& spec,
    std::size_t chunk_cells);

/// Predicted simulated duration (seconds) of executing `network` over
/// `elements` cells under `kind` on a device described by `spec` —
/// obtained by replaying the strategy's command stream against the cost
/// model, without executing anything. The distributed engine derives its
/// per-block straggler budgets from this: a block whose measured simulated
/// time exceeds a multiple of the estimate is declared straggling and
/// speculatively re-executed on a healthy device. For the streamed
/// strategy on a network it cannot execute, the fusion estimate is
/// returned (the rung the fallback ladder would skip to is close enough
/// for budgeting).
double estimate_sim_seconds(const dataflow::Network& network,
                            const FieldBindings& bindings,
                            std::size_t elements, const vcl::DeviceSpec& spec,
                            StrategyKind kind,
                            std::size_t streamed_chunk_cells = 0);

/// The fastest strategy whose predicted working set fits the device's
/// *free* memory, in preference order fusion > streamed > staged >
/// roundtrip (the simulated-runtime ordering measured in the benchmarks).
/// Throws DeviceOutOfMemory when none fits.
StrategyKind select_strategy(const dataflow::Network& network,
                             const FieldBindings& bindings,
                             std::size_t elements, const vcl::Device& device);

}  // namespace dfg::runtime
