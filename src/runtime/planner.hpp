// Runtime layer: memory planning and automatic strategy selection.
//
// The paper's discussion (§V-D) concludes that hosts must "select from
// multiple execution strategies and target devices" under memory
// constraints. This module makes that selection analytical: it predicts
// each strategy's device-memory high-water mark from the network alone —
// no execution, no trial allocation — by replaying the exact allocation
// discipline each strategy implements. Predictions are bit-for-bit equal
// to the tracker's measured high-water (locked in by tests), so a host can
// pick the fastest strategy that fits before moving a single byte.
#pragma once

#include <cstddef>

#include <set>
#include <string>
#include <vector>

#include "dataflow/network.hpp"
#include "runtime/bindings.hpp"
#include "runtime/strategy.hpp"
#include "vcl/device.hpp"
#include "vcl/pipeline.hpp"

namespace dfg::runtime {

/// Which of a network's field inputs are warm — already resident on the
/// target device, so a strategy would eliminate their uploads entirely.
/// Passed to the estimators (nullptr = all-cold, the historical behaviour,
/// bit-exact against the tracker with the pool disabled). The streamed
/// estimators deliberately ignore residency: slab sub-ranges are keyed per
/// chunk, so warmth there depends on chunk alignment — pricing them cold
/// keeps streamed estimates conservative.
struct Residency {
  std::set<std::string> warm;

  bool is_warm(const std::string& name) const {
    return warm.count(name) != 0;
  }

  /// Asks the device's resident pool which of `network`'s bound fields
  /// would hit right now. Empty when the pool is disabled.
  static Residency probe(const vcl::Device& device,
                         const FieldBindings& bindings,
                         const dataflow::Network& network);
};

/// Predicted device-memory high-water mark (bytes) of executing `network`
/// over `elements` cells under `kind`. For the streamed strategy the
/// prediction assumes the given chunk size (0 = the minimal viable chunk,
/// i.e. the strategy's memory floor). Bindings are consulted for array
/// extents only; no data is read. With `residency`, warm field inputs are
/// excluded from the working set (their buffers already exist; the
/// device's free memory already accounts for them).
std::size_t estimate_high_water(const dataflow::Network& network,
                                const FieldBindings& bindings,
                                std::size_t elements, StrategyKind kind,
                                std::size_t streamed_chunk_cells = 0,
                                const Residency* residency = nullptr);

/// Per-chunk (upload, kernel, read) durations of streamed execution under
/// `spec`'s cost model, for overlap analysis with vcl::pipeline_makespan.
/// The serial sum of these costs equals the streamed strategy's simulated
/// time on that device exactly (same cost model, same event sequence).
/// `chunk_cells` = 0 chunks one plane at a time.
///
/// `compute_efficiency` (here and in estimate_sim_seconds /
/// select_fastest_strategy below) is the executing backend's fraction of
/// peak flop rate; 0 resolves the process-default backend (DFGEN_BACKEND),
/// which is what an engine-less caller executes under — so default-arg
/// estimates stay bit-exact against measured simulated time whichever
/// backend the environment names. Engines pass their device's pinned
/// backend explicitly.
std::vector<vcl::ChunkCost> streamed_chunk_costs(
    const dataflow::Network& network, const FieldBindings& bindings,
    std::size_t elements, const vcl::DeviceSpec& spec,
    std::size_t chunk_cells, double compute_efficiency = 0.0);

/// Predicted simulated duration (seconds) of executing `network` over
/// `elements` cells under `kind` on a device described by `spec` —
/// obtained by replaying the strategy's command stream against the cost
/// model, without executing anything. The distributed engine derives its
/// per-block straggler budgets from this: a block whose measured simulated
/// time exceeds a multiple of the estimate is declared straggling and
/// speculatively re-executed on a healthy device. For the streamed
/// strategy on a network it cannot execute, the fusion estimate is
/// returned (the rung the fallback ladder would skip to is close enough
/// for budgeting).
double estimate_sim_seconds(const dataflow::Network& network,
                            const FieldBindings& bindings,
                            std::size_t elements, const vcl::DeviceSpec& spec,
                            StrategyKind kind,
                            std::size_t streamed_chunk_cells = 0,
                            const Residency* residency = nullptr,
                            double compute_efficiency = 0.0);

/// The fastest strategy whose predicted working set fits the device's
/// *free* memory, in preference order fusion > streamed > staged >
/// roundtrip (the simulated-runtime ordering measured in the benchmarks).
/// Throws DeviceOutOfMemory when none fits.
StrategyKind select_strategy(const dataflow::Network& network,
                             const FieldBindings& bindings,
                             std::size_t elements, const vcl::Device& device);

/// Residency-aware selection: among the strategies whose residency-aware
/// working set fits the device's free memory, the one with the smallest
/// residency-aware simulated-time estimate (ties break in the preference
/// order select_strategy uses). With warm inputs this can legitimately
/// invert the static order — e.g. prefer a warm staged/roundtrip run,
/// whose uploads vanish, over a cold fusion. Throws DeviceOutOfMemory when
/// nothing fits.
StrategyKind select_fastest_strategy(const dataflow::Network& network,
                                     const FieldBindings& bindings,
                                     std::size_t elements,
                                     const vcl::Device& device,
                                     const Residency* residency = nullptr,
                                     double compute_efficiency = 0.0);

}  // namespace dfg::runtime
