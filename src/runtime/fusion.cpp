// Fusion execution strategy (paper §III-C3).
//
// The dynamic kernel generator fuses the entire network into one kernel:
// unique external inputs upload once, a single dispatch computes the whole
// expression with intermediates in registers (constants inlined at source
// level, decompose lowered to vector-component selects, gradients reading
// global memory directly), and one transfer returns the result. Global
// memory holds only the inputs and the output — the footprint the paper's
// Figure 2 annotates as "all filters combined into a single kernel".
//
// Networks that take gradients of *computed* values cannot fuse into one
// kernel (a stencil cannot read registers); for those the strategy runs
// the partitioned pipeline: one fused kernel per materialisation barrier,
// intermediates staying on the device, still with (unique inputs) uploads
// and a single readback.
//
// The pipeline comes from the process-wide ProgramCache (generated once per
// network structure), and buffer-name lookups are resolved to dense slot
// indices up front, so the per-evaluation path performs no string-keyed map
// lookups.
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kernels/generator.hpp"
#include "kernels/program_cache.hpp"
#include "kernels/vm.hpp"
#include "runtime/strategy.hpp"
#include "support/error.hpp"

namespace dfg::runtime {

namespace {

/// Per-stage buffer wiring with every parameter name resolved to a dense
/// slot index (resolved once per pipeline, reused across stages).
struct StagePlan {
  std::vector<std::size_t> param_slots;
  std::size_t out_slot = 0;
};

}  // namespace

std::vector<float> FusionStrategy::execute(const dataflow::Network& network,
                                           const FieldBindings& bindings,
                                           std::size_t elements,
                                           vcl::Device& device,
                                           vcl::ProfilingLog& log) const {
  vcl::CommandQueue queue(device, log);
  const std::shared_ptr<const kernels::FusedPipeline> pipeline =
      kernels::ProgramCache::instance().fused_pipeline(network);

  // Resolve every buffer name (fields, materialised intermediates, the
  // output) to a slot index.
  std::vector<std::string> slot_names;
  std::map<std::string, std::size_t> slot_index;
  const auto slot_for = [&](const std::string& name) {
    const auto it = slot_index.find(name);
    if (it != slot_index.end()) return it->second;
    const std::size_t slot = slot_names.size();
    slot_names.push_back(name);
    slot_index.emplace(name, slot);
    return slot;
  };
  const int output_id = network.output_id();
  std::vector<StagePlan> plans;
  plans.reserve(pipeline->stages.size());
  for (const kernels::FusedPipeline::Stage& stage : pipeline->stages) {
    StagePlan plan;
    plan.param_slots.reserve(stage.program.params().size());
    for (const kernels::BufferParam& param : stage.program.params()) {
      plan.param_slots.push_back(slot_for(param.name));
    }
    plan.out_slot = slot_for(
        stage.node_id == output_id && !pipeline->partitioned()
            ? std::string("out")
            : kernels::materialized_param_name(stage.node_id));
    plans.push_back(std::move(plan));
  }
  const std::size_t final_slot =
      slot_index.at(pipeline->partitioned()
                        ? kernels::materialized_param_name(output_id)
                        : std::string("out"));

  // Buffers live for the whole pipeline: field uploads happen once at
  // first use (in stage-parameter order, matching the uncached event
  // stream); materialised intermediates are written by their stage and
  // read by later stages' kernels without further transfers. A field slot
  // may resolve to a pool-resident buffer instead of an owned upload.
  std::vector<std::optional<vcl::Buffer>> buffers(slot_names.size());
  std::vector<const vcl::Buffer*> resident(slot_names.size(), nullptr);
  const auto slot_buffer = [&](std::size_t slot) -> const vcl::Buffer& {
    return resident[slot] != nullptr ? *resident[slot] : *buffers[slot];
  };
  for (std::size_t s = 0; s < pipeline->stages.size(); ++s) {
    const kernels::FusedPipeline::Stage& stage = pipeline->stages[s];
    const StagePlan& plan = plans[s];
    std::vector<kernels::BufferBinding> stage_inputs;
    stage_inputs.reserve(plan.param_slots.size());
    for (const std::size_t slot : plan.param_slots) {
      if (!buffers[slot] && resident[slot] == nullptr) {
        // A field parameter seen for the first time: stage the binding.
        // (Materialised parameters are created by their producing stage
        // and are always present by the time a consumer asks.)
        StagedInput staged = stage_input(
            queue, bindings.get(slot_names[slot]), slot_names[slot]);
        if (staged.resident != nullptr) {
          resident[slot] = staged.resident;
        } else {
          buffers[slot] = std::move(staged.owned);
        }
      }
      const vcl::Buffer& buffer = slot_buffer(slot);
      stage_inputs.push_back(
          kernels::BufferBinding{buffer.device_view().data(), buffer.size()});
    }
    vcl::Buffer out_buffer =
        device.allocate(elements * stage.program.out_stride());
    launch_program(queue, stage.program, std::move(stage_inputs),
                   out_buffer.device_view(), elements);
    buffers[plan.out_slot] = std::move(out_buffer);
  }

  const vcl::Buffer& final_buffer = slot_buffer(final_slot);
  std::vector<float> result(final_buffer.size());
  queue.read(final_buffer, result,
             network.spec().node(output_id).label);
  result.resize(elements);
  return result;
}

}  // namespace dfg::runtime
