// Fusion execution strategy (paper §III-C3).
//
// The dynamic kernel generator fuses the entire network into one kernel:
// unique external inputs upload once, a single dispatch computes the whole
// expression with intermediates in registers (constants inlined at source
// level, decompose lowered to vector-component selects, gradients reading
// global memory directly), and one transfer returns the result. Global
// memory holds only the inputs and the output — the footprint the paper's
// Figure 2 annotates as "all filters combined into a single kernel".
//
// Networks that take gradients of *computed* values cannot fuse into one
// kernel (a stencil cannot read registers); for those the strategy runs
// the partitioned pipeline: one fused kernel per materialisation barrier,
// intermediates staying on the device, still with (unique inputs) uploads
// and a single readback.
#include <map>
#include <vector>

#include "kernels/generator.hpp"
#include "kernels/vm.hpp"
#include "runtime/strategy.hpp"
#include "support/error.hpp"

namespace dfg::runtime {

std::vector<float> FusionStrategy::execute(const dataflow::Network& network,
                                           const FieldBindings& bindings,
                                           std::size_t elements,
                                           vcl::Device& device,
                                           vcl::ProfilingLog& log) const {
  vcl::CommandQueue queue(device, log);
  const kernels::FusedPipeline pipeline =
      kernels::generate_fused_pipeline(network);

  // Buffers live for the whole pipeline: field uploads happen once at
  // first use; materialised intermediates are written by their stage and
  // read by later stages' kernels without further transfers.
  std::map<std::string, vcl::Buffer> buffers;
  const auto buffer_for = [&](const std::string& name)
      -> kernels::BufferBinding {
    auto it = buffers.find(name);
    if (it == buffers.end()) {
      // A field parameter seen for the first time: upload the binding.
      // (Materialised parameters are created by their producing stage and
      // are always present by the time a consumer asks.)
      const auto view = bindings.get(name);
      vcl::Buffer buffer = device.allocate(view.size());
      queue.write(buffer, view, name);
      it = buffers.emplace(name, std::move(buffer)).first;
    }
    return kernels::BufferBinding{it->second.device_view().data(),
                                  it->second.size()};
  };

  const int output_id = network.output_id();
  for (const kernels::FusedPipeline::Stage& stage : pipeline.stages) {
    std::vector<kernels::BufferBinding> stage_inputs;
    stage_inputs.reserve(stage.program.params().size());
    for (const kernels::BufferParam& param : stage.program.params()) {
      stage_inputs.push_back(buffer_for(param.name));
    }
    const std::string out_name =
        stage.node_id == output_id && !pipeline.partitioned()
            ? std::string("out")
            : kernels::materialized_param_name(stage.node_id);
    vcl::Buffer out_buffer =
        device.allocate(elements * stage.program.out_stride());
    launch_program(queue, stage.program, std::move(stage_inputs),
                   out_buffer.device_view(), elements);
    buffers.emplace(out_name, std::move(out_buffer));
  }

  const std::string final_name =
      pipeline.partitioned() ? kernels::materialized_param_name(output_id)
                             : std::string("out");
  const vcl::Buffer& final_buffer = buffers.at(final_name);
  std::vector<float> result(final_buffer.size());
  queue.read(final_buffer, result,
             network.spec().node(output_id).label);
  result.resize(elements);
  return result;
}

}  // namespace dfg::runtime
