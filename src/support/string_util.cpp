#include "support/string_util.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace dfg::support {

std::string join(const std::vector<std::string>& parts,
                 const std::string& separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string format_bytes(std::size_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string format_float(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  std::string out = buf;
  if (out.find_first_of(".eE") == std::string::npos &&
      out.find_first_of("nN") == std::string::npos) {
    out += ".0";
  }
  return out;
}

}  // namespace dfg::support
