// Wall-clock stopwatch used to attach real host timings to profiling events
// alongside the cost model's simulated device timings.
#pragma once

#include <chrono>

namespace dfg::support {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dfg::support
