// Centralized DFGEN_* environment-variable parsing.
//
// Every knob the benches and engines read from the environment goes
// through these typed accessors instead of ad-hoc std::getenv calls, so
// (a) parsing is uniform (one definition of what "truthy" means, one
// bounds check), (b) the full set of recognised variables is enumerable,
// and (c) a typo like DFGEN_FALBACK=1 is caught: warn_unknown_variables()
// scans the process environment for DFGEN_-prefixed names that no accessor
// has registered and reports them instead of silently ignoring them.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace dfg::support::env {

/// Raw lookup; registers `name` as a known variable.
std::optional<std::string> raw(const std::string& name);

/// Typed accessors: return `fallback` when the variable is unset or fails
/// to parse (a malformed value is reported to stderr, never fatal).
int get_int(const std::string& name, int fallback);
double get_double(const std::string& name, double fallback);
/// Truthy = non-zero integer ("1", "2"); "0", "" and unset are false.
bool get_flag(const std::string& name, bool fallback = false);
std::string get_string(const std::string& name, std::string fallback);

/// DFGEN_-prefixed variables present in the process environment that no
/// accessor has registered (likely typos).
std::vector<std::string> unknown_variables();

/// The registered variable closest to `name` by edit distance, when close
/// enough to be a plausible typo (distance ≤ 3); empty string otherwise.
/// This is what turns "unknown DFGEN_SHARD_QUEUE_DEPT" into an actionable
/// "did you mean DFGEN_SHARD_QUEUE_DEPTH?".
std::string suggestion_for(const std::string& name);

/// Prints one warning line per unknown DFGEN_* variable to stderr, with a
/// did-you-mean suggestion when a registered name is a near miss.
/// Returns the number of unknowns. Benches call this once at startup.
std::size_t warn_unknown_variables();

/// Pre-registers the canonical variable set so unknown_variables() is
/// meaningful even before any accessor ran. Called by the accessors'
/// registry on first use.
void register_known(const std::string& name);

}  // namespace dfg::support::env
