#include "support/parallel.hpp"

#include <atomic>

namespace dfg::support {

namespace {
std::atomic<std::size_t> g_worker_override{0};

std::size_t hardware_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}
}  // namespace

std::size_t worker_count() {
  const std::size_t override = g_worker_override.load(std::memory_order_relaxed);
  return override != 0 ? override : hardware_workers();
}

void set_worker_count(std::size_t workers) {
  g_worker_override.store(workers, std::memory_order_relaxed);
}

}  // namespace dfg::support
