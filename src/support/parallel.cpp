#include "support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dfg::support {

namespace {
std::atomic<std::size_t> g_worker_override{0};

std::size_t hardware_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}
}  // namespace

std::size_t worker_count() {
  const std::size_t override = g_worker_override.load(std::memory_order_relaxed);
  return override != 0 ? override : hardware_workers();
}

void set_worker_count(std::size_t workers) {
  g_worker_override.store(workers, std::memory_order_relaxed);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = std::min(worker_count(), n);
  if (workers <= 1) {
    body(0, n);
    return;
  }

  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&, begin, end] {
      try {
        body(begin, end);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dfg::support
