#include "support/checksum.hpp"

#include <cstring>

namespace dfg::support {

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fnv1a(std::string_view text, std::uint64_t seed) {
  return fnv1a(text.data(), text.size(), seed);
}

std::uint64_t checksum_floats(std::span<const float> values,
                              std::uint64_t seed, std::size_t stride) {
  if (stride == 0) stride = 1;
  const std::uint64_t count = values.size();
  std::uint64_t hash = fnv1a(&count, sizeof(count), seed);
  for (std::size_t i = 0; i < values.size(); i += stride) {
    std::uint32_t word;
    std::memcpy(&word, &values[i], sizeof(word));
    hash ^= word;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace dfg::support
