// Small string helpers shared by the source printer, script dump and
// diagnostics. Kept deliberately tiny; anything heavier belongs in the
// module that needs it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dfg::support {

/// Joins parts with the given separator ("a, b, c" style).
std::string join(const std::vector<std::string>& parts,
                 const std::string& separator);

/// Formats a byte count with a binary-unit suffix ("218.0 MiB").
std::string format_bytes(std::size_t bytes);

/// Formats a floating point literal so it round-trips and always carries a
/// decimal point or exponent (matching source-level constant insertion in
/// generated kernel code).
std::string format_float(double value);

}  // namespace dfg::support
