// Error hierarchy shared by every dfgen module.
//
// All failures surfaced to users of the public API derive from dfg::Error so
// a host application can catch a single base type. Sub-classes carry enough
// structured context (sizes, positions) for programmatic handling; the
// what() string is always human readable on its own.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace dfg {

/// Base class of every exception thrown by dfgen.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a device buffer allocation would exceed the device's global
/// memory capacity. This is the condition behind the paper's failed GPU test
/// cases (Figures 5 and 6).
class DeviceOutOfMemory : public Error {
 public:
  DeviceOutOfMemory(std::string device, std::size_t requested_bytes,
                    std::size_t in_use_bytes, std::size_t capacity_bytes)
      : Error("device '" + device + "' out of global memory: requested " +
              std::to_string(requested_bytes) + " B with " +
              std::to_string(in_use_bytes) + " B in use of " +
              std::to_string(capacity_bytes) + " B capacity"),
        device_(std::move(device)),
        requested_bytes_(requested_bytes),
        in_use_bytes_(in_use_bytes),
        capacity_bytes_(capacity_bytes) {}

  const std::string& device() const { return device_; }
  std::size_t requested_bytes() const { return requested_bytes_; }
  std::size_t in_use_bytes() const { return in_use_bytes_; }
  std::size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  std::string device_;
  std::size_t requested_bytes_;
  std::size_t in_use_bytes_;
  std::size_t capacity_bytes_;
};

/// Thrown when a device command (transfer enqueue or kernel launch) fails
/// transiently — the virtual analogue of a recoverable CL_OUT_OF_RESOURCES
/// or a dropped PCIe transaction. Retryable: the command queue re-enqueues
/// with bounded, seeded backoff before letting it propagate.
class DeviceError : public Error {
 public:
  DeviceError(std::string device, std::string site, std::string label)
      : Error("device '" + device + "' transient failure at " + site +
              " enqueue of '" + label + "'"),
        device_(std::move(device)),
        site_(std::move(site)),
        label_(std::move(label)) {}

  const std::string& device() const { return device_; }
  /// Injection site name ("Dev-W", "Dev-R" or "K-Exe").
  const std::string& site() const { return site_; }
  /// Label of the failed command (kernel or buffer name).
  const std::string& label() const { return label_; }

 private:
  std::string device_;
  std::string site_;
  std::string label_;
};

/// Thrown by the command queue's watchdog when a command's simulated
/// duration exceeds `deadline_factor` times its cost-model estimate — the
/// virtual analogue of a wedged kernel or a device running far off its
/// performance envelope. Retryable (a hang is usually one command); if it
/// survives the retry budget the fallback layer degrades the strategy, and
/// the distributed engine quarantines the device and re-executes the block
/// elsewhere.
class DeviceTimeout : public Error {
 public:
  DeviceTimeout(std::string device, std::string site, std::string label,
                double estimate_seconds, double deadline_seconds)
      : Error("device '" + device + "' exceeded deadline at " + site +
              " '" + label + "': estimated " +
              std::to_string(estimate_seconds) + " s, deadline " +
              std::to_string(deadline_seconds) + " s"),
        device_(std::move(device)),
        site_(std::move(site)),
        label_(std::move(label)),
        estimate_seconds_(estimate_seconds),
        deadline_seconds_(deadline_seconds) {}

  const std::string& device() const { return device_; }
  const std::string& site() const { return site_; }
  const std::string& label() const { return label_; }
  double estimate_seconds() const { return estimate_seconds_; }
  double deadline_seconds() const { return deadline_seconds_; }

 private:
  std::string device_;
  std::string site_;
  std::string label_;
  double estimate_seconds_;
  double deadline_seconds_;
};

/// Thrown when a transfer's destination checksum does not match its source
/// — silent corruption made loud. The queue re-executes the transfer a
/// bounded number of times first; a corruption that persists past the
/// retry budget reaches the distributed engine, which re-executes the
/// block and, on repeat, quarantines the device.
class DataCorruption : public Error {
 public:
  DataCorruption(std::string device, std::string site, std::string label)
      : Error("device '" + device + "' corrupted data detected at " + site +
              " of '" + label + "' (checksum mismatch)"),
        device_(std::move(device)),
        site_(std::move(site)),
        label_(std::move(label)) {}

  const std::string& device() const { return device_; }
  const std::string& site() const { return site_; }
  const std::string& label() const { return label_; }

 private:
  std::string device_;
  std::string site_;
  std::string label_;
};

/// Thrown when a device is lost outright (the virtual analogue of
/// CL_DEVICE_NOT_AVAILABLE after a hang or ECC shutdown). Not retryable on
/// the same device: every subsequent command fails until the device object
/// is replaced.
class DeviceLost : public Error {
 public:
  explicit DeviceLost(std::string device)
      : Error("device '" + device + "' lost; all further commands fail"),
        device_(std::move(device)) {}

  const std::string& device() const { return device_; }

 private:
  std::string device_;
};

/// Thrown by the expression front-end on lexical or syntactic errors.
/// Carries the 1-based source line and column of the offending token.
class ParseError : public Error {
 public:
  ParseError(const std::string& message, int line, int column)
      : Error(message + " (line " + std::to_string(line) + ", column " +
              std::to_string(column) + ")"),
        line_(line),
        column_(column) {}

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Thrown when a dataflow network specification is malformed: unknown
/// filters, arity mismatches, component-count violations, cycles, or
/// references to unbound fields.
class NetworkError : public Error {
 public:
  using Error::Error;
};

/// Thrown by the kernel layer: malformed bytecode, register exhaustion,
/// buffer-binding mismatches.
class KernelError : public Error {
 public:
  using Error::Error;
};

}  // namespace dfg
