// Seeded FNV-1a checksums for end-to-end transfer integrity.
//
// Real many-core deployments treat silent data corruption — a flipped bit
// on a DMA transfer, a marginal memory module — as a first-class fault. The
// command queue computes a checksum of every transfer's source before the
// copy and verifies the destination afterwards, so one corrupted word is
// detected before it can propagate into a derived field. FNV-1a is chosen
// for the same reason production transports use cheap non-cryptographic
// checksums: one multiply and one xor per word, and a single flipped bit
// anywhere in the covered words changes the digest with certainty (the
// xor-then-multiply pipeline never cancels a single-word change; two runs
// collide only if the data actually differs in 2+ compensating words, odds
// ~2^-64 for random corruption).
//
// `stride` subsamples every stride-th word to bound the cost on very large
// transfers; stride 1 (the queue's default) covers every word and therefore
// detects every single-word flip deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace dfg::support {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a over raw bytes, starting from `seed` (chain calls to checksum a
/// logical record spread over several buffers).
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = kFnvOffsetBasis);

/// FNV-1a over a string (run keys, labels).
std::uint64_t fnv1a(std::string_view text,
                    std::uint64_t seed = kFnvOffsetBasis);

/// A string literal must hash as text, not fall into the (pointer, byte
/// count) overload with the seed misread as a length.
inline std::uint64_t fnv1a(const char* text,
                           std::uint64_t seed = kFnvOffsetBasis) {
  return fnv1a(std::string_view(text), seed);
}

/// Checksum of a float array sampling every `stride`-th word (stride 0 is
/// treated as 1). The word count is mixed in first, so a truncated buffer
/// never collides with its prefix.
std::uint64_t checksum_floats(std::span<const float> values,
                              std::uint64_t seed = kFnvOffsetBasis,
                              std::size_t stride = 1);

}  // namespace dfg::support
