#include "support/env.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

extern "C" char** environ;

namespace dfg::support::env {

namespace {

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::set<std::string>& known_registry() {
  // Seeded with the canonical knob set so a variable is "known" even in a
  // process that never happens to read it (e.g. DFGEN_CHECKPOINT_DIR in a
  // single-device bench).
  static std::set<std::string> known = {
      "DFGEN_RUNS",
      "DFGEN_FALLBACK",
      "DFGEN_DEADLINE_FACTOR",
      "DFGEN_CHECKPOINT_DIR",
      "DFGEN_TRACE_DIR",
      "DFGEN_SMOKE",
      "DFGEN_NO_PROGRAM_CACHE",
      "DFGEN_NO_VM_OPTIMIZER",
      "DFGEN_BACKEND",
      "DFGEN_JIT_CC",
      "DFGEN_JIT_CACHE_CAP",
      "DFGEN_SERVICE_QUEUE_DEPTH",
      "DFGEN_SERVICE_QUOTA_MB",
      "DFGEN_SERVICE_BACKLOG_MB",
      "DFGEN_SERVICE_COALESCE",
      "DFGEN_SERVICE_RESIDENT_POOL",
      "DFGEN_SHARDS",
      "DFGEN_SHARD_QUEUE_DEPTH",
      "DFGEN_SHED_POLICY",
      "DFGEN_RESIDENT_POOL",
      "DFGEN_NO_RESIDENT_POOL",
      "DFGEN_RESIDENT_WATERMARK",
      "DFGEN_MEMO",
      "DFGEN_NO_MEMO",
      "DFGEN_MEMO_CAP",
      "DFGEN_METRICS",
      "DFGEN_METRICS_OUT",
      "DFGEN_FUZZ_SEED",
      "DFGEN_FUZZ_ITERATIONS",
      "DFGEN_UPDATE_GOLDEN",
  };
  return known;
}

void report_malformed(const std::string& name, const char* value,
                      const char* wanted) {
  std::fprintf(stderr, "dfgen: ignoring %s='%s' (expected %s)\n",
               name.c_str(), value, wanted);
}

/// Classic two-row Levenshtein distance; the knob names are short enough
/// that quadratic cost is irrelevant.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

void register_known(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  known_registry().insert(name);
}

std::optional<std::string> raw(const std::string& name) {
  register_known(name);
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

int get_int(const std::string& name, int fallback) {
  const auto value = raw(name);
  if (!value) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') {
    report_malformed(name, value->c_str(), "an integer");
    return fallback;
  }
  return static_cast<int>(parsed);
}

double get_double(const std::string& name, double fallback) {
  const auto value = raw(name);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') {
    report_malformed(name, value->c_str(), "a number");
    return fallback;
  }
  return parsed;
}

bool get_flag(const std::string& name, bool fallback) {
  const auto value = raw(name);
  if (!value) return fallback;
  if (value->empty()) return false;
  char* end = nullptr;
  const long parsed = std::strtol(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') {
    report_malformed(name, value->c_str(), "0 or 1");
    return fallback;
  }
  return parsed != 0;
}

std::string get_string(const std::string& name, std::string fallback) {
  const auto value = raw(name);
  return value ? *value : std::move(fallback);
}

std::vector<std::string> unknown_variables() {
  std::vector<std::string> unknown;
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto& known = known_registry();
  for (char** entry = environ; entry != nullptr && *entry != nullptr;
       ++entry) {
    const std::string pair(*entry);
    if (pair.rfind("DFGEN_", 0) != 0) continue;
    const std::size_t eq = pair.find('=');
    const std::string name = pair.substr(0, eq);
    if (known.find(name) == known.end()) unknown.push_back(name);
  }
  return unknown;
}

std::string suggestion_for(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::string best;
  std::size_t best_distance = 4;  // suggest only within distance 3
  for (const std::string& candidate : known_registry()) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

std::size_t warn_unknown_variables() {
  const std::vector<std::string> unknown = unknown_variables();
  for (const std::string& name : unknown) {
    const std::string suggestion = suggestion_for(name);
    if (suggestion.empty()) {
      std::fprintf(stderr,
                   "dfgen: unknown environment variable %s (DFGEN_ prefix is "
                   "reserved; is it misspelled?)\n",
                   name.c_str());
    } else {
      std::fprintf(stderr,
                   "dfgen: unknown environment variable %s (did you mean "
                   "%s?)\n",
                   name.c_str(), suggestion.c_str());
    }
  }
  return unknown.size();
}

}  // namespace dfg::support::env
