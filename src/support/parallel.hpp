// Minimal shared-memory parallel loop support.
//
// Kernel NDRange execution in the virtual compute layer is divided into
// contiguous chunks processed by a small pool of worker threads, mirroring
// how an OpenCL CPU runtime maps work-items onto cores. The pool degrades
// gracefully to serial execution on single-core hosts.
//
// Chunks are multiples of a caller-supplied *grain* (except the final
// partial chunk), defaulting to the kernel VM's tile size: a tile of
// work-items is never split across two workers, so the tiled interpreter
// always sees full tiles except at the NDRange tail. A grain of 1
// reproduces the historical ceil(n/workers) chunking exactly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace dfg::support {

/// Default parallel_for grain, matching kernels::kTileSize (kept as an
/// independent constant so support/ does not depend on kernels/).
inline constexpr std::size_t kDefaultGrain = 1024;

/// Number of worker threads used by parallel_for. Defaults to
/// std::thread::hardware_concurrency() (at least 1).
std::size_t worker_count();

/// Overrides the worker count (useful for tests); pass 0 to restore the
/// hardware default. Takes effect on the next parallel_for call.
void set_worker_count(std::size_t workers);

/// Invokes body(begin, end) over disjoint sub-ranges covering [0, n).
/// The body must be safe to call concurrently on disjoint ranges; each
/// range is a multiple of `grain` items except possibly the last.
/// Exceptions thrown by the body are captured and the first one rethrown
/// on the calling thread after all workers finish. Templated over the body
/// so lambdas are invoked directly (no std::function allocation or
/// indirect call per chunk).
template <typename Body>
void parallel_for(std::size_t n, Body&& body,
                  std::size_t grain = kDefaultGrain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t tiles = (n + grain - 1) / grain;
  const std::size_t workers = std::min(worker_count(), tiles);
  if (workers <= 1) {
    body(std::size_t{0}, n);
    return;
  }

  const std::size_t chunk = ((tiles + workers - 1) / workers) * grain;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&, begin, end] {
      try {
        body(begin, end);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dfg::support
