// Minimal shared-memory parallel loop support.
//
// Kernel NDRange execution in the virtual compute layer is divided into
// contiguous chunks processed by a small pool of worker threads, mirroring
// how an OpenCL CPU runtime maps work-items onto cores. The pool degrades
// gracefully to serial execution on single-core hosts.
#pragma once

#include <cstddef>
#include <functional>

namespace dfg::support {

/// Number of worker threads used by parallel_for. Defaults to
/// std::thread::hardware_concurrency() (at least 1).
std::size_t worker_count();

/// Overrides the worker count (useful for tests); pass 0 to restore the
/// hardware default. Takes effect on the next parallel_for call.
void set_worker_count(std::size_t workers);

/// Invokes body(begin, end) over disjoint sub-ranges covering [0, n).
/// The body must be safe to call concurrently on disjoint ranges.
/// Exceptions thrown by the body are captured and the first one rethrown
/// on the calling thread after all workers finish.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace dfg::support
