// Core layer: the host interface.
//
// The paper's §III-D: a host application (there, VisIt; here, any C++
// code) binds views of its existing field arrays, hands the framework an
// expression string, and receives the derived field plus a report of the
// device events, simulated runtime and device memory high-water mark —
// the quantities the paper's three evaluation studies chart. The engine is
// designed for in-situ use: bound arrays are never copied on the host
// side, and one engine is reused across time steps (rebinding is cheap).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dataflow/spec.hpp"
#include "kernels/backend.hpp"
#include "mesh/mesh.hpp"
#include "runtime/bindings.hpp"
#include "runtime/fallback.hpp"
#include "runtime/strategy.hpp"
#include "vcl/device.hpp"
#include "vcl/profiling.hpp"

namespace dfg {

struct EngineOptions {
  runtime::StrategyKind strategy = runtime::StrategyKind::fusion;
  dataflow::SpecOptions spec_options;
  /// Streamed strategy only: target cells per chunk (0 = auto-size from
  /// the device's free memory).
  std::size_t streamed_chunk_cells = 0;
  /// Degradation and retry behaviour. Disabled by default: a strategy that
  /// does not fit throws DeviceOutOfMemory, matching the paper's aborted
  /// GPU cells. Enable it to degrade along fusion → streamed → staged →
  /// roundtrip instead; the report then lists every rung transition.
  runtime::FallbackPolicy fallback;
  /// Keep bound field uploads resident on the device across evaluations
  /// (vcl::ResidentPool): repeated evaluations over the same arrays skip
  /// their host-to-device transfers. Off by default — the cold path is
  /// byte-identical to previous releases. Callers that mutate a bound
  /// array between evaluations must call Engine::invalidate (or
  /// vcl::note_host_mutation). Env overrides, read per evaluation:
  /// DFGEN_RESIDENT_POOL=1 forces on, DFGEN_NO_RESIDENT_POOL=1 forces off.
  bool resident_pool = false;
  /// Pick the strategy per evaluation with
  /// runtime::select_fastest_strategy, using the device's current
  /// residency: warm inputs price their uploads at zero, so a warm
  /// staged/roundtrip run can beat a cold fusion. `strategy` is ignored
  /// while set.
  bool auto_strategy = false;
  /// Execution backend for this engine's device: the tiled VM interpreter
  /// (`vm`), native code compiled per program (`jit`), or `auto_select`
  /// (jit with per-program fallback to the VM). Unset defers to
  /// DFGEN_BACKEND, read per evaluation; set, it overrides the env for
  /// this engine's device.
  std::optional<kernels::BackendKind> backend;
};

/// One strategy-degradation step taken during an evaluation, in
/// human-readable form (strategy names plus the error that forced it).
struct DegradationStep {
  std::string from;
  std::string to;
  std::string reason;
};

/// Everything one evaluation produced. `values` is the derived field
/// (elements floats); the remaining members snapshot the profiling state
/// for this evaluation only.
struct EvaluationReport {
  std::vector<float> values;
  std::string output_name;
  std::size_t elements = 0;

  /// The strategy that actually produced `values` — the requested one, or
  /// the rung the engine degraded to.
  std::string strategy;
  /// The execution backend the device was armed with ("vm", "jit", ...).
  /// Note a jit device may still have run individual programs on the VM if
  /// their compiles failed — see dfgen_jit_fallbacks_total.
  std::string backend;
  std::size_t dev_writes = 0;   ///< host-to-device transfers (Dev-W)
  std::size_t dev_reads = 0;    ///< device-to-host transfers (Dev-R)
  std::size_t kernel_execs = 0; ///< kernel dispatches (K-Exe)
  double sim_seconds = 0.0;     ///< cost-model device time
  double wall_seconds = 0.0;    ///< host wall-clock time of device ops
  std::size_t memory_high_water_bytes = 0;

  /// Every rung transition the fallback policy took, in order. Empty when
  /// the requested strategy ran to completion.
  std::vector<DegradationStep> degradations;
  /// Commands re-enqueued after a transient injected fault.
  std::size_t command_retries = 0;
  /// Faults the armed FaultPlan injected during this evaluation.
  std::size_t injected_faults = 0;
  /// Commands abandoned at their watchdog deadline (T-Out events).
  std::size_t command_timeouts = 0;
  /// Transfers whose destination checksum disagreed with the source
  /// (Chksum events); each was re-executed before values propagated.
  std::size_t checksum_mismatches = 0;

  /// Fused-program cache traffic during this evaluation: requests served
  /// from the process-wide cache vs. requests that ran the generator.
  /// Steady-state re-evaluation of the same expression shows zero misses.
  std::size_t pipeline_cache_hits = 0;
  std::size_t pipeline_cache_misses = 0;

  /// Resident-buffer pool traffic during this evaluation (all zero while
  /// the pool is disabled). A hit is an input upload eliminated entirely;
  /// upload_bytes_saved totals the bytes those transfers would have moved.
  std::size_t resident_hits = 0;
  std::size_t resident_misses = 0;
  std::size_t resident_evictions = 0;
  std::size_t resident_invalidations = 0;
  std::size_t resident_upload_bytes_saved = 0;

  /// The network-definition script (inspectable, per the paper's §III-B1).
  std::string network_script;
  /// Generated OpenCL-like source of the fused kernel (fusion strategy
  /// only; empty otherwise).
  std::string kernel_source;
};

/// One expression evaluated over T timesteps (Engine::evaluate_series) —
/// the in-situ host loop the paper's VisIt integration implies. `steps`
/// holds every per-timestep report in order; the totals accumulate the
/// transfer-elimination story the time-series bench gates on.
struct SeriesReport {
  std::vector<EvaluationReport> steps;
  std::size_t total_dev_writes = 0;
  std::size_t total_kernel_execs = 0;
  /// Bytes actually moved host-to-device across all steps.
  std::size_t total_upload_bytes = 0;
  /// Uploads eliminated by the resident pool across all steps (and the
  /// bytes they would have moved).
  std::size_t total_resident_hits = 0;
  std::size_t total_upload_bytes_saved = 0;
  /// Bindings invalidated because the advance callback reported them
  /// changed.
  std::size_t fields_invalidated = 0;
  double total_sim_seconds = 0.0;
};

/// Timestep advance callback: mutates bound host arrays in place for step
/// `t` and returns the names of the bindings it changed. Only those are
/// invalidated, so with the resident pool on, every unchanged field keeps
/// its device copy across the step boundary.
using SeriesAdvanceFn =
    std::function<std::vector<std::string>(std::size_t step)>;

/// Thread-safety contract (relied on by service::EvalService): one Engine
/// instance must be driven by one thread at a time, but concurrent
/// evaluate() calls on *distinct engines bound to distinct devices* are
/// safe. Everything an evaluation mutates is engine-local (bindings, log)
/// or device-local (memory tracker, fault injector, watchdog/retry
/// policies — the device must not be shared across engines evaluating
/// concurrently); the only process-wide state touched is the
/// kernels::ProgramCache, which is internally synchronized and whose
/// traffic is attributed per thread (thread_stats).
class Engine {
 public:
  /// The device must outlive the engine.
  explicit Engine(vcl::Device& device, EngineOptions options = {});

  /// Binds (or rebinds) a named host array; the view must stay valid
  /// across evaluations that use it.
  void bind(const std::string& name, std::span<const float> values);

  /// Binds a mesh's x/y/z/dims arrays and makes its cell count the default
  /// element count. The mesh must outlive the engine's evaluations.
  void bind_mesh(const mesh::RectilinearMesh& mesh);

  void set_strategy(runtime::StrategyKind kind);
  runtime::StrategyKind strategy() const { return options_.strategy; }

  /// Declares that the host mutated (or replaced) the named bound array:
  /// bumps its generation tag and drops any resident device copies, so the
  /// next evaluation re-uploads. Required for correctness whenever the
  /// resident pool is enabled and a bound array changes in place; harmless
  /// (and a no-op on unbound names) otherwise.
  void invalidate(const std::string& name);

  /// Evaluates an expression script over an explicit output element count.
  EvaluationReport evaluate(std::string_view expression, std::size_t elements);

  /// Evaluates a pre-built network over an explicit output element count.
  /// evaluate(expression, elements) is this after parsing; the memo layer
  /// calls it directly with rewritten networks (extracted subtrees,
  /// spliced consumers) that have no expression-string form.
  EvaluationReport evaluate_network(const dataflow::Network& network,
                                    std::size_t elements);

  /// Evaluates using the mesh cell count when a mesh is bound, otherwise
  /// the extent of the first bound field the expression uses.
  EvaluationReport evaluate(std::string_view expression);

  /// Time-series mode: evaluates `expression` once per timestep for
  /// `timesteps` steps. The expression is parsed and translated exactly
  /// once; `advance`, when provided, is called before every step after the
  /// first (steps 1..T-1) to mutate bound host arrays in place, and the
  /// names it returns are the only bindings invalidated — the incremental
  /// re-upload contract. Unknown names returned by the callback are
  /// ignored (Engine::invalidate semantics).
  SeriesReport evaluate_series(std::string_view expression,
                               std::size_t elements, std::size_t timesteps,
                               const SeriesAdvanceFn& advance = nullptr);

  vcl::Device& device() { return *device_; }
  const runtime::FieldBindings& bindings() const { return bindings_; }
  /// Profiling log of the most recent evaluation.
  const vcl::ProfilingLog& log() const { return log_; }

 private:
  vcl::Device* device_;
  EngineOptions options_;
  runtime::FieldBindings bindings_;
  vcl::ProfilingLog log_;
  std::size_t default_elements_ = 0;
};

}  // namespace dfg
