// Core layer: the paper's application expressions (Figure 3).
//
// The three vortex-detection expressions used throughout the paper's
// evaluation, verbatim (the paper's listing truncates the w_3 line with a
// typo — "0.5 * (dv[0])" — completed here as the antisymmetric counterpart
// of s_3, and the closing Q line, which Figure 3C cuts off, is restored as
// q = 0.5 * (w_norm - s_norm)).
#pragma once

namespace dfg::expressions {

/// Figure 3A: velocity magnitude.
inline constexpr const char* kVelocityMagnitude =
    "v_mag = sqrt(u*u + v*v + w*w)";

/// Figure 3B: vorticity magnitude.
inline constexpr const char* kVorticityMagnitude = R"(
du = grad3d(u,dims,x,y,z)
dv = grad3d(v,dims,x,y,z)
dw = grad3d(w,dims,x,y,z)
w_x = dw[1] - dv[2]
w_y = du[2] - dw[0]
w_z = dv[0] - du[1]
w_mag = sqrt(w_x*w_x + w_y*w_y + w_z*w_z)
)";

/// Figure 3C: Q-criterion.
inline constexpr const char* kQCriterion = R"(
du = grad3d(u, dims, x, y, z)
dv = grad3d(v, dims, x, y, z)
dw = grad3d(w, dims, x, y, z)
s_1 = 0.5 * (du[1] + dv[0])
s_2 = 0.5 * (du[2] + dw[0])
s_3 = 0.5 * (dv[0] + du[1])
s_5 = 0.5 * (dv[2] + dw[1])
s_6 = 0.5 * (dw[0] + du[2])
s_7 = 0.5 * (dw[1] + dv[2])
w_1 = 0.5 * (du[1] - dv[0])
w_2 = 0.5 * (du[2] - dw[0])
w_3 = 0.5 * (dv[0] - du[1])
w_5 = 0.5 * (dv[2] - dw[1])
w_6 = 0.5 * (dw[0] - du[2])
w_7 = 0.5 * (dw[1] - dv[2])
s_norm = du[0]*du[0] + s_1*s_1 + s_2*s_2 +
         s_3*s_3 + dv[1]*dv[1] + s_5*s_5 +
         s_6*s_6 + s_7*s_7 + dw[2]*dw[2]
w_norm = w_1*w_1 + w_2*w_2 + w_3*w_3 +
         w_5*w_5 + w_6*w_6 + w_7*w_7
q = 0.5 * (w_norm - s_norm)
)";

/// Divergence of the velocity field (zero for incompressible flows):
/// a one-line compressibility check.
inline constexpr const char* kDivergence = R"(
du = grad3d(u, dims, x, y, z)
dv = grad3d(v, dims, x, y, z)
dw = grad3d(w, dims, x, y, z)
div_v = du[0] + dv[1] + dw[2]
)";

/// Helicity density h = v . curl(v), the alignment of velocity and
/// vorticity (for a Beltrami flow like ABC, h == |v|^2 exactly).
inline constexpr const char* kHelicity = R"(
du = grad3d(u, dims, x, y, z)
dv = grad3d(v, dims, x, y, z)
dw = grad3d(w, dims, x, y, z)
w_x = dw[1] - dv[2]
w_y = du[2] - dw[0]
w_z = dv[0] - du[1]
h = u*w_x + v*w_y + w*w_z
)";

/// Enstrophy density 0.5 * |curl(v)|^2, the dissipation-rate proxy.
inline constexpr const char* kEnstrophy = R"(
du = grad3d(u, dims, x, y, z)
dv = grad3d(v, dims, x, y, z)
dw = grad3d(w, dims, x, y, z)
w_x = dw[1] - dv[2]
w_y = du[2] - dw[0]
w_z = dv[0] - du[1]
ens = 0.5 * (w_x*w_x + w_y*w_y + w_z*w_z)
)";

/// The CFD operator library spellings of the same quantities: each
/// builtin expands in the translator to the grad3d/decompose graph its
/// hand-written counterpart above builds, with the three velocity
/// gradients shared across operators by construction. kCurlZ picks one
/// component of the vector-valued curl with the usual [i] postfix.
inline constexpr const char* kOpDivergence =
    "div_v = divergence(u, v, w, dims, x, y, z)";
inline constexpr const char* kOpVorticityMagnitude =
    "w_mag = vorticity_mag(u, v, w, dims, x, y, z)";
inline constexpr const char* kOpQCriterion =
    "q = qcriterion(u, v, w, dims, x, y, z)";
inline constexpr const char* kOpEnstrophy =
    "ens = enstrophy(u, v, w, dims, x, y, z)";
inline constexpr const char* kOpHelicity =
    "h = helicity(u, v, w, dims, x, y, z)";
inline constexpr const char* kOpLambda2 =
    "l2 = lambda2(u, v, w, dims, x, y, z)";
inline constexpr const char* kOpCurlZ =
    "w_z = curl(u, v, w, dims, x, y, z)[2]";

/// Gradient magnitude of velocity magnitude — a second-derivative front
/// detector that exercises the partitioned fusion pipeline (gradient of a
/// computed value).
inline constexpr const char* kSpeedFrontStrength = R"(
vm = sqrt(u*u + v*v + w*w)
g = grad3d(vm, dims, x, y, z)
front = sqrt(g[0]*g[0] + g[1]*g[1] + g[2]*g[2])
)";

/// The paper-intro example composing a conditional with a gradient norm:
/// a = if (norm(grad(b)) > 10) then (c * c) else (-c * c), expressed in the
/// framework's grammar (norm(grad(b)) spelled out via grad3d/decompose).
inline constexpr const char* kIntroConditional = R"(
db = grad3d(b, dims, x, y, z)
g_norm = sqrt(db[0]*db[0] + db[1]*db[1] + db[2]*db[2])
a = if (g_norm > 10.0) then (c * c) else (-c * c)
)";

}  // namespace dfg::expressions
