#include "core/engine.hpp"

#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "kernels/generator.hpp"
#include "kernels/program_cache.hpp"
#include "kernels/source_printer.hpp"
#include "support/error.hpp"

namespace dfg {

Engine::Engine(vcl::Device& device, EngineOptions options)
    : device_(&device), options_(options) {}

void Engine::bind(const std::string& name, std::span<const float> values) {
  bindings_.bind(name, values);
}

void Engine::bind_mesh(const mesh::RectilinearMesh& mesh) {
  bindings_.bind_mesh(mesh);
  default_elements_ = mesh.cell_count();
}

void Engine::set_strategy(runtime::StrategyKind kind) {
  options_.strategy = kind;
}

EvaluationReport Engine::evaluate(std::string_view expression,
                                  std::size_t elements) {
  if (elements == 0) {
    throw Error("evaluate requires a positive element count");
  }
  dataflow::Network network(
      dataflow::build_network(expression, options_.spec_options));

  log_.clear();
  device_->memory().reset_high_water();
  // Fault plans count per evaluation, and any fault injected outside a
  // command queue (an allocation) must still land in this log.
  device_->fault().begin_run();
  device_->fault().set_sink(&log_);

  // Thread-local snapshot: concurrent evaluations on other threads must
  // not leak their cache traffic into this report (or vice versa).
  const kernels::ProgramCacheStats cache_before =
      kernels::ProgramCache::instance().thread_stats();
  runtime::FallbackOutcome outcome = runtime::execute_with_fallback(
      network, bindings_, elements, *device_, log_, options_.strategy,
      options_.fallback, options_.streamed_chunk_cells);
  EvaluationReport report;
  report.values = std::move(outcome.values);
  report.output_name = network.spec().node(network.output_id()).label;
  report.elements = elements;
  report.strategy = runtime::strategy_name(outcome.executed);
  for (const runtime::DegradationRecord& step : outcome.degradations) {
    report.degradations.push_back({runtime::strategy_name(step.from),
                                   runtime::strategy_name(step.to),
                                   step.reason});
  }
  report.injected_faults = device_->fault().run_faults();
  for (const vcl::Event& event : log_.events()) {
    if (event.kind == vcl::EventKind::fault &&
        event.label.rfind("retry:", 0) == 0) {
      ++report.command_retries;
    }
  }
  report.dev_writes = log_.count(vcl::EventKind::host_to_device);
  report.dev_reads = log_.count(vcl::EventKind::device_to_host);
  report.kernel_execs = log_.count(vcl::EventKind::kernel_exec);
  report.command_timeouts = log_.count(vcl::EventKind::timeout);
  report.checksum_mismatches = log_.count(vcl::EventKind::integrity);
  report.sim_seconds = log_.total_sim_seconds();
  report.wall_seconds = log_.total_wall_seconds();
  report.memory_high_water_bytes = device_->memory().high_water();
  report.network_script = network.spec().to_script();
  const kernels::ProgramCacheStats cache_after =
      kernels::ProgramCache::instance().thread_stats();
  report.pipeline_cache_hits =
      (cache_after.pipeline_hits - cache_before.pipeline_hits) +
      (cache_after.standalone_hits - cache_before.standalone_hits);
  report.pipeline_cache_misses =
      (cache_after.pipeline_misses - cache_before.pipeline_misses) +
      (cache_after.standalone_misses - cache_before.standalone_misses);
  if (outcome.executed == runtime::StrategyKind::fusion ||
      outcome.executed == runtime::StrategyKind::streamed) {
    // The source dump reuses the cached pipeline the strategy just ran.
    const std::shared_ptr<const kernels::FusedPipeline> pipeline =
        kernels::ProgramCache::instance().fused_pipeline(network);
    for (const kernels::FusedPipeline::Stage& stage : pipeline->stages) {
      if (!report.kernel_source.empty()) report.kernel_source += "\n";
      report.kernel_source += kernels::to_opencl_source(stage.program);
    }
  }
  return report;
}

EvaluationReport Engine::evaluate(std::string_view expression) {
  if (default_elements_ != 0) {
    return evaluate(expression, default_elements_);
  }
  // Infer the element count from the first bound non-mesh field the
  // expression uses.
  const dataflow::NetworkSpec probe =
      dataflow::build_network(expression, options_.spec_options);
  for (const std::string& name : probe.field_names()) {
    if (name == "x" || name == "y" || name == "z" || name == "dims") continue;
    if (bindings_.has(name)) {
      return evaluate(expression, bindings_.get(name).size());
    }
  }
  throw Error(
      "cannot infer the output element count: bind a mesh or call "
      "evaluate(expression, elements)");
}

}  // namespace dfg
