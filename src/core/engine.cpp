#include "core/engine.hpp"

#include <array>

#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "kernels/generator.hpp"
#include "kernels/program_cache.hpp"
#include "kernels/source_printer.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "runtime/planner.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "vcl/event.hpp"
#include "vcl/resident_pool.hpp"

namespace dfg {

namespace {

/// The registry series an evaluation's report is a delta view over. All
/// instrumentation (queue commands, fault injections) happens on the
/// evaluating thread, so thread-shard deltas are exact per evaluation even
/// with concurrent engines on other threads.
struct ReportCounters {
  obs::MetricId writes, reads, kernels, timeouts, integrity, retries, faults;
  obs::MetricId res_hits, res_misses, res_evictions, res_invalidations,
      res_saved;

  static ReportCounters resolve(const std::string& device) {
    obs::MetricsRegistry& reg = obs::metrics();
    const auto event_id = [&](vcl::EventKind kind) {
      return reg.counter(
          "dfgen_vcl_events_total",
          {{"device", device}, {"kind", vcl::event_kind_slug(kind)}});
    };
    ReportCounters ids;
    ids.writes = event_id(vcl::EventKind::host_to_device);
    ids.reads = event_id(vcl::EventKind::device_to_host);
    ids.kernels = event_id(vcl::EventKind::kernel_exec);
    ids.timeouts = event_id(vcl::EventKind::timeout);
    ids.integrity = event_id(vcl::EventKind::integrity);
    ids.retries = reg.counter("dfgen_vcl_command_retries_total",
                              {{"device", device}});
    ids.faults = reg.counter("dfgen_vcl_faults_injected_total",
                             {{"device", device}});
    // Registered eagerly (not at first pool event) so the series appear —
    // as zeros — in snapshots of pool-disabled runs, keeping the metrics
    // goldens schema-complete.
    const obs::Labels dev = {{"device", device}};
    ids.res_hits = reg.counter("dfgen_resident_hits_total", dev);
    ids.res_misses = reg.counter("dfgen_resident_misses_total", dev);
    ids.res_evictions = reg.counter("dfgen_resident_evictions_total", dev);
    ids.res_invalidations =
        reg.counter("dfgen_resident_invalidations_total", dev);
    ids.res_saved = reg.counter("dfgen_resident_upload_bytes_saved", dev);
    // Same eager registration for the jit series (process-wide, no device
    // label: the module cache is shared): vm-only runs snapshot them as
    // zeros instead of omitting them.
    reg.counter("dfgen_jit_compiles_total");
    reg.counter("dfgen_jit_compile_failures_total");
    reg.counter("dfgen_jit_cache_hits_total");
    reg.counter("dfgen_jit_cache_misses_total");
    reg.counter("dfgen_jit_cache_evictions_total");
    reg.counter("dfgen_jit_fallbacks_total");
    return ids;
  }

  std::array<std::uint64_t, 12> sample() const {
    obs::MetricsRegistry& reg = obs::metrics();
    return {reg.thread_counter_value(writes),
            reg.thread_counter_value(reads),
            reg.thread_counter_value(kernels),
            reg.thread_counter_value(timeouts),
            reg.thread_counter_value(integrity),
            reg.thread_counter_value(retries),
            reg.thread_counter_value(faults),
            reg.thread_counter_value(res_hits),
            reg.thread_counter_value(res_misses),
            reg.thread_counter_value(res_evictions),
            reg.thread_counter_value(res_invalidations),
            reg.thread_counter_value(res_saved)};
  }
};

/// Resolves EngineOptions::resident_pool against the env overrides
/// (DFGEN_RESIDENT_POOL forces on, DFGEN_NO_RESIDENT_POOL forces off —
/// the latter wins, and is the differential tests' kill switch).
bool resident_pool_enabled(const EngineOptions& options) {
  if (support::env::get_flag("DFGEN_NO_RESIDENT_POOL", false)) return false;
  return options.resident_pool ||
         support::env::get_flag("DFGEN_RESIDENT_POOL", false);
}

}  // namespace

Engine::Engine(vcl::Device& device, EngineOptions options)
    : device_(&device), options_(options) {}

void Engine::bind(const std::string& name, std::span<const float> values) {
  bindings_.bind(name, values);
}

void Engine::bind_mesh(const mesh::RectilinearMesh& mesh) {
  bindings_.bind_mesh(mesh);
  default_elements_ = mesh.cell_count();
}

void Engine::set_strategy(runtime::StrategyKind kind) {
  options_.strategy = kind;
}

void Engine::invalidate(const std::string& name) {
  if (!bindings_.has(name)) return;
  const std::span<const float> view = bindings_.get(name);
  vcl::note_host_mutation(view.data());
  device_->resident().invalidate(view.data());
}

EvaluationReport Engine::evaluate(std::string_view expression,
                                  std::size_t elements) {
  const dataflow::Network network(
      dataflow::build_network(expression, options_.spec_options));
  return evaluate_network(network, elements);
}

EvaluationReport Engine::evaluate_network(const dataflow::Network& network,
                                          std::size_t elements) {
  if (elements == 0) {
    throw Error("evaluate requires a positive element count");
  }

  // Arm (or disarm) the device's resident pool for this evaluation. The
  // env overrides are read per evaluate so a differential harness can flip
  // DFGEN_NO_RESIDENT_POOL between otherwise identical runs.
  const bool pool_on = resident_pool_enabled(options_);
  device_->resident().set_enabled(pool_on);

  // Arm the execution backend. The option pins it; otherwise the device
  // re-resolves DFGEN_BACKEND per evaluation (a differential harness can
  // flip backends between otherwise identical runs).
  if (options_.backend) {
    device_->set_backend(kernels::backend_for(*options_.backend));
  }
  const kernels::ExecutionBackend& backend = device_->backend();

  // Strategy choice: static (options_.strategy) or residency-aware. The
  // planner prices kernels at the armed backend's compute efficiency so a
  // jit device's estimates match what its launches will report.
  runtime::StrategyKind requested = options_.strategy;
  if (options_.auto_strategy) {
    const runtime::Residency residency =
        runtime::Residency::probe(*device_, bindings_, network);
    requested = runtime::select_fastest_strategy(
        network, bindings_, elements, *device_, &residency,
        backend.compute_efficiency());
  }

  log_.clear();
  device_->memory().reset_high_water();
  // Fault plans count per evaluation, and any fault injected outside a
  // command queue (an allocation) must still land in this log.
  device_->fault().begin_run();
  device_->fault().set_sink(&log_);

  // Thread-local snapshots: concurrent evaluations on other threads must
  // not leak their cache or device traffic into this report (or vice
  // versa). The report below is a delta view over these registry series —
  // the counters themselves are the source of truth.
  const kernels::ProgramCacheStats cache_before =
      kernels::ProgramCache::instance().thread_stats();
  const ReportCounters ids = ReportCounters::resolve(device_->spec().name);
  const std::array<std::uint64_t, 12> before = ids.sample();
  obs::Span span(
      "evaluate:" + network.spec().node(network.output_id()).label,
      "request");
  runtime::FallbackOutcome outcome = [&] {
    // Resident buffers acquired by the strategies stay pinned — immune to
    // LRU/capacity eviction — until the evaluation completes.
    vcl::ResidentPool::PinScope pins(device_->resident());
    return runtime::execute_with_fallback(
        network, bindings_, elements, *device_, log_, requested,
        options_.fallback, options_.streamed_chunk_cells);
  }();
  span.add_sim_seconds(log_.total_sim_seconds());
  const std::array<std::uint64_t, 12> after = ids.sample();
  EvaluationReport report;
  report.values = std::move(outcome.values);
  report.output_name = network.spec().node(network.output_id()).label;
  report.elements = elements;
  report.strategy = runtime::strategy_name(outcome.executed);
  report.backend = backend.name();
  for (const runtime::DegradationRecord& step : outcome.degradations) {
    report.degradations.push_back({runtime::strategy_name(step.from),
                                   runtime::strategy_name(step.to),
                                   step.reason});
  }
  report.dev_writes = after[0] - before[0];
  report.dev_reads = after[1] - before[1];
  report.kernel_execs = after[2] - before[2];
  report.command_timeouts = after[3] - before[3];
  report.checksum_mismatches = after[4] - before[4];
  report.command_retries = after[5] - before[5];
  report.injected_faults = after[6] - before[6];
  report.resident_hits = after[7] - before[7];
  report.resident_misses = after[8] - before[8];
  report.resident_evictions = after[9] - before[9];
  report.resident_invalidations = after[10] - before[10];
  report.resident_upload_bytes_saved = after[11] - before[11];
  report.sim_seconds = log_.total_sim_seconds();
  report.wall_seconds = log_.total_wall_seconds();
  report.memory_high_water_bytes = device_->memory().high_water();
  report.network_script = network.spec().to_script();
  const kernels::ProgramCacheStats cache_after =
      kernels::ProgramCache::instance().thread_stats();
  report.pipeline_cache_hits =
      (cache_after.pipeline_hits - cache_before.pipeline_hits) +
      (cache_after.standalone_hits - cache_before.standalone_hits);
  report.pipeline_cache_misses =
      (cache_after.pipeline_misses - cache_before.pipeline_misses) +
      (cache_after.standalone_misses - cache_before.standalone_misses);
  if (outcome.executed == runtime::StrategyKind::fusion ||
      outcome.executed == runtime::StrategyKind::streamed) {
    // The source dump reuses the cached pipeline the strategy just ran.
    const std::shared_ptr<const kernels::FusedPipeline> pipeline =
        kernels::ProgramCache::instance().fused_pipeline(network);
    for (const kernels::FusedPipeline::Stage& stage : pipeline->stages) {
      if (!report.kernel_source.empty()) report.kernel_source += "\n";
      report.kernel_source += kernels::to_opencl_source(stage.program);
    }
  }
  return report;
}

SeriesReport Engine::evaluate_series(std::string_view expression,
                                     std::size_t elements,
                                     std::size_t timesteps,
                                     const SeriesAdvanceFn& advance) {
  if (timesteps == 0) {
    throw Error("evaluate_series requires a positive timestep count");
  }
  // Parse and translate once; every step evaluates the same network. The
  // process-wide ProgramCache already deduplicates codegen across steps,
  // so this mainly pins down the contract: the expression cannot change
  // mid-series, only the bound host data can.
  const dataflow::Network network(
      dataflow::build_network(expression, options_.spec_options));

  SeriesReport series;
  series.steps.reserve(timesteps);
  for (std::size_t step = 0; step < timesteps; ++step) {
    if (step > 0 && advance) {
      // The callback mutates bound host arrays in place and names them;
      // invalidating exactly those is what makes re-upload incremental —
      // every unnamed binding keeps its resident device copy.
      for (const std::string& name : advance(step)) {
        invalidate(name);
        ++series.fields_invalidated;
      }
    }
    EvaluationReport report = evaluate_network(network, elements);
    series.total_dev_writes += report.dev_writes;
    series.total_kernel_execs += report.kernel_execs;
    series.total_upload_bytes += log_.bytes(vcl::EventKind::host_to_device);
    series.total_resident_hits += report.resident_hits;
    series.total_upload_bytes_saved += report.resident_upload_bytes_saved;
    series.total_sim_seconds += report.sim_seconds;
    series.steps.push_back(std::move(report));
  }
  return series;
}

EvaluationReport Engine::evaluate(std::string_view expression) {
  if (default_elements_ != 0) {
    return evaluate(expression, default_elements_);
  }
  // Infer the element count from the first bound non-mesh field the
  // expression uses.
  const dataflow::NetworkSpec probe =
      dataflow::build_network(expression, options_.spec_options);
  for (const std::string& name : probe.field_names()) {
    if (name == "x" || name == "y" || name == "z" || name == "dims") continue;
    if (bindings_.has(name)) {
      return evaluate(expression, bindings_.get(name).size());
    }
  }
  throw Error(
      "cannot infer the output element count: bind a mesh or call "
      "evaluate(expression, elements)");
}

}  // namespace dfg
