// Kernel layer: process-wide fused-program cache.
//
// Kernel generation (and optimisation) is pure: the same network structure
// always yields the same programs. The cache memoises generate_fused_pipeline
// results keyed by the network's canonical fingerprint, so repeated
// Engine::evaluate calls, the planner's estimate replays, and every block of
// a distributed run generate each pipeline exactly once. Standalone
// primitive programs (used by the staged and roundtrip strategies) are
// memoised the same way, keyed by primitive kind / component / constant
// bits.
//
// Environment knobs (read once at first use):
//   DFGEN_NO_PROGRAM_CACHE=1  — generate fresh programs on every request
//   DFGEN_NO_VM_OPTIMIZER=1   — cache raw (unoptimized) pipelines
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "dataflow/network.hpp"
#include "kernels/generator.hpp"
#include "kernels/program.hpp"

namespace dfg::kernels {

/// Monotonic hit/miss counters (a "miss" is any request that ran the
/// generator, including requests served while caching is disabled).
struct ProgramCacheStats {
  std::uint64_t pipeline_hits = 0;
  std::uint64_t pipeline_misses = 0;
  std::uint64_t standalone_hits = 0;
  std::uint64_t standalone_misses = 0;
};

class ProgramCache {
 public:
  /// The process-wide instance. All methods are thread-safe.
  static ProgramCache& instance();

  /// The fused pipeline for `network`, generated on first request. The
  /// returned pointer stays valid for the process lifetime (entries are
  /// never evicted; clear() only detaches them from the cache).
  std::shared_ptr<const FusedPipeline> fused_pipeline(
      const dataflow::Network& network,
      const std::string& kernel_name = "fused_expression");

  /// The single fused kernel for a non-partitioned network — the cached
  /// pipeline's only stage. Throws KernelError with generate_fused's
  /// guidance when the network requires partitioning (the streamed and
  /// multi-device paths cannot execute pipelines).
  std::shared_ptr<const Program> fused_single(
      const dataflow::Network& network,
      const std::string& kernel_name = "fused_expression");

  /// A standalone primitive program (make_standalone_program memoised).
  /// `value` is only meaningful for constant-fill programs, `component`
  /// for decompose. Standalone programs are never optimized: they are
  /// single-primitive bodies with nothing to fold.
  std::shared_ptr<const Program> standalone(const std::string& kind,
                                            int component = 0,
                                            float value = 0.0f);

  ProgramCacheStats stats() const;

  /// Stats accumulated by requests issued from the *calling thread* only
  /// (monotonic per thread, never reset — reset_stats() deliberately does
  /// not touch them, so a before/after delta can never straddle a reset).
  /// Concurrent evaluations attribute cache traffic to their own report by
  /// taking before/after deltas of this instead of the process-wide
  /// totals, which race under concurrency: a delta of stats() spanning
  /// another engine's evaluation charges this report with that engine's
  /// hits and misses. Every cache request an evaluation makes (strategies,
  /// planner replays, the engine's source dump) happens on the evaluating
  /// thread, so thread deltas are exact — including for a service worker
  /// thread reused across sessions, where each evaluation's delta window
  /// opens after the previous session's traffic is already in the base
  /// snapshot. Backed by the obs::MetricsRegistry thread shards
  /// (dfgen_cache_requests_total), not a separate thread_local mirror.
  ProgramCacheStats thread_stats() const;

  void reset_stats();
  /// Drops all cached entries (outstanding shared_ptrs stay valid).
  void clear();

  bool caching_enabled() const { return caching_enabled_; }
  bool optimizer_enabled() const { return optimizer_enabled_; }
  void set_caching_enabled(bool enabled);
  void set_optimizer_enabled(bool enabled);

 private:
  ProgramCache();

  using PipelineKey = std::tuple<std::uint64_t, std::string, bool>;
  using StandaloneKey = std::tuple<std::string, int, std::uint32_t>;

  mutable std::mutex mutex_;
  std::map<PipelineKey, std::shared_ptr<const FusedPipeline>> pipelines_;
  std::map<StandaloneKey, std::shared_ptr<const Program>> standalones_;
  ProgramCacheStats stats_;
  bool caching_enabled_ = true;
  bool optimizer_enabled_ = true;
};

}  // namespace dfg::kernels
