// Kernel layer: process-wide fused-program cache.
//
// Kernel generation (and optimisation) is pure: the same network structure
// always yields the same programs. The cache memoises generate_fused_pipeline
// results keyed by the network's canonical fingerprint, so repeated
// Engine::evaluate calls, the planner's estimate replays, and every block of
// a distributed run generate each pipeline exactly once. Standalone
// primitive programs (used by the staged and roundtrip strategies) are
// memoised the same way, keyed by primitive kind / component / constant
// bits.
//
// The cache also owns the process's compiled jit modules (jit_module):
// shared objects are expensive to produce (a full toolchain invocation),
// so they are memoised by program fingerprint + compiler command with LRU
// eviction over a bounded capacity — compile-once, run-many.
//
// Environment knobs (read once at first use):
//   DFGEN_NO_PROGRAM_CACHE=1  — generate fresh programs on every request
//   DFGEN_NO_VM_OPTIMIZER=1   — cache raw (unoptimized) pipelines
//   DFGEN_JIT_CACHE_CAP=N     — max resident jit modules (default 64)
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "dataflow/network.hpp"
#include "kernels/generator.hpp"
#include "kernels/jit.hpp"
#include "kernels/program.hpp"

namespace dfg::kernels {

/// Monotonic hit/miss counters (a "miss" is any request that ran the
/// generator, including requests served while caching is disabled).
struct ProgramCacheStats {
  std::uint64_t pipeline_hits = 0;
  std::uint64_t pipeline_misses = 0;
  std::uint64_t standalone_hits = 0;
  std::uint64_t standalone_misses = 0;
};

/// Monotonic totals for the jit module cache (process-wide; the same
/// figures feed the dfgen_jit_* metrics counters). A "hit" includes joining
/// a compile already in flight on another thread and re-reading a
/// negative-cached failure; "compiles" counts toolchain invocations, so
/// hits + misses ≥ compiles and misses == compiles.
struct JitCacheStats {
  std::uint64_t compiles = 0;
  std::uint64_t compile_failures = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class ProgramCache {
 public:
  /// The process-wide instance. All methods are thread-safe.
  static ProgramCache& instance();

  /// The fused pipeline for `network`, generated on first request. The
  /// returned pointer stays valid for the process lifetime (entries are
  /// never evicted; clear() only detaches them from the cache).
  std::shared_ptr<const FusedPipeline> fused_pipeline(
      const dataflow::Network& network,
      const std::string& kernel_name = "fused_expression");

  /// The single fused kernel for a non-partitioned network — the cached
  /// pipeline's only stage. Throws KernelError with generate_fused's
  /// guidance when the network requires partitioning (the streamed and
  /// multi-device paths cannot execute pipelines).
  std::shared_ptr<const Program> fused_single(
      const dataflow::Network& network,
      const std::string& kernel_name = "fused_expression");

  /// A standalone primitive program (make_standalone_program memoised).
  /// `value` is only meaningful for constant-fill programs, `component`
  /// for decompose. Standalone programs are never optimized: they are
  /// single-primitive bodies with nothing to fold.
  std::shared_ptr<const Program> standalone(const std::string& kind,
                                            int component = 0,
                                            float value = 0.0f);

  /// The compiled jit module for `program`, or nullptr when compilation
  /// failed (failures are negative-cached, so a broken toolchain costs one
  /// compiler invocation per program, not one per launch). Entries are
  /// keyed by Program::fingerprint() xor a hash of the compiler command:
  /// changing DFGEN_JIT_CC both invalidates stale successes and retries
  /// past failures. Concurrent requests for the same key join one
  /// in-flight compile (it runs outside the cache lock; joiners block on a
  /// shared future and count as hits). At most jit_capacity() modules stay
  /// resident — least-recently-used entries are evicted first, and an
  /// evicted module's shared object is unloaded once the last outstanding
  /// kernel drops its reference. The first call also reaps artifacts
  /// abandoned by dead processes (jit::reap_stale_artifacts).
  std::shared_ptr<const jit::Module> jit_module(const Program& program);

  std::size_t jit_capacity() const;
  /// Shrinking below the resident count evicts immediately (LRU first).
  void set_jit_capacity(std::size_t capacity);
  JitCacheStats jit_stats() const;

  ProgramCacheStats stats() const;

  /// Stats accumulated by requests issued from the *calling thread* only
  /// (monotonic per thread, never reset — reset_stats() deliberately does
  /// not touch them, so a before/after delta can never straddle a reset).
  /// Concurrent evaluations attribute cache traffic to their own report by
  /// taking before/after deltas of this instead of the process-wide
  /// totals, which race under concurrency: a delta of stats() spanning
  /// another engine's evaluation charges this report with that engine's
  /// hits and misses. Every cache request an evaluation makes (strategies,
  /// planner replays, the engine's source dump) happens on the evaluating
  /// thread, so thread deltas are exact — including for a service worker
  /// thread reused across sessions, where each evaluation's delta window
  /// opens after the previous session's traffic is already in the base
  /// snapshot. Backed by the obs::MetricsRegistry thread shards
  /// (dfgen_cache_requests_total), not a separate thread_local mirror.
  ProgramCacheStats thread_stats() const;

  void reset_stats();
  /// Drops all cached entries (outstanding shared_ptrs stay valid).
  void clear();

  bool caching_enabled() const { return caching_enabled_; }
  bool optimizer_enabled() const { return optimizer_enabled_; }
  void set_caching_enabled(bool enabled);
  void set_optimizer_enabled(bool enabled);

 private:
  ProgramCache();

  using PipelineKey = std::tuple<std::uint64_t, std::string, bool>;
  using StandaloneKey = std::tuple<std::string, int, std::uint32_t>;

  /// One jit cache slot. `ready` resolves to the module (nullptr for a
  /// negative-cached failure); while the compile is still running on the
  /// inserting thread the slot is already in the map so racing requests
  /// dedup onto the same future.
  struct JitSlot {
    std::shared_future<std::shared_ptr<const jit::Module>> ready;
    std::uint64_t last_use = 0;
    bool in_flight = false;
  };

  /// Evicts LRU jit slots until at most jit_capacity_ remain. In-flight
  /// slots are pinned (evicting one would recompile what is already being
  /// compiled). Requires mutex_ held.
  void evict_jit_locked();

  mutable std::mutex mutex_;
  std::map<PipelineKey, std::shared_ptr<const FusedPipeline>> pipelines_;
  std::map<StandaloneKey, std::shared_ptr<const Program>> standalones_;
  std::map<std::uint64_t, JitSlot> jit_modules_;
  std::uint64_t jit_tick_ = 0;
  std::size_t jit_capacity_ = 64;
  bool jit_reaped_ = false;
  ProgramCacheStats stats_;
  JitCacheStats jit_stats_;
  bool caching_enabled_ = true;
  bool optimizer_enabled_ = true;
};

}  // namespace dfg::kernels
