// Kernel layer: bytecode virtual machine.
//
// Executes a Program for a contiguous range of global ids, reading buffer
// parameters through BufferBinding views and writing the output buffer.
// This is the "device" compute engine behind CommandQueue::launch: the
// strategies build a KernelLaunch whose body calls run() on a chunk.
//
// run() interprets the program *tile-wise*: each instruction processes a
// contiguous tile of up to kTileSize work-items before the next instruction
// dispatches, with registers held as per-tile column arrays. Opcode bodies
// become tight branch-free loops the compiler auto-vectorizes, so the
// per-instruction dispatch cost is amortized over the whole tile instead of
// being paid per element. run_scalar() preserves the original
// element-at-a-time interpreter as the differential baseline; both produce
// bit-identical results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "kernels/program.hpp"

namespace dfg::kernels {

/// Work-items interpreted per instruction dispatch by the tiled VM. Also the
/// default parallel_for grain (support::kDefaultGrain mirrors this value so
/// a tile is never split across two workers).
inline constexpr std::size_t kTileSize = 1024;

/// A read-only view of one bound buffer argument.
struct BufferBinding {
  const float* data = nullptr;
  std::size_t elements = 0;  ///< total floats in the buffer
};

/// Executes `program` for global ids [begin, end) with the tiled
/// interpreter.
///
/// * inputs must match program.params() in count; a `is_vec` parameter must
///   hold 4 floats per element.
/// * out must hold program.out_stride() floats per element over the full
///   NDRange (it is indexed with absolute global ids).
/// * Bounds and binding-shape violations throw KernelError; the grad3d
///   opcode additionally validates the dims/coordinate buffers once per
///   call.
void run(const Program& program, std::span<const BufferBinding> inputs,
         float* out, std::size_t out_elements, std::size_t begin,
         std::size_t end);

/// Executes `program` element-at-a-time: the full instruction sequence is
/// dispatched for one global id before moving to the next. Identical
/// semantics and bit-identical output to run(); kept as the differential
/// reference and as the interpreter-baseline stage of bench_vm_throughput.
void run_scalar(const Program& program, std::span<const BufferBinding> inputs,
                float* out, std::size_t out_elements, std::size_t begin,
                std::size_t end);

/// Convenience wrapper executing the whole NDRange serially (used by tests).
void run_all(const Program& program, std::span<const BufferBinding> inputs,
             std::span<float> out, std::size_t ndrange);

/// The launch-argument validation both interpreters perform before
/// executing (argument counts, buffer extents, grad3d dims/coordinate
/// shape), without running anything. Throws KernelError exactly when
/// run()/run_scalar() would; the jit backend calls this so a compiled
/// kernel rejects malformed launches identically to the VM.
void validate_launch(const Program& program,
                     std::span<const BufferBinding> inputs,
                     std::size_t out_elements, std::size_t begin,
                     std::size_t end);

/// Exact backward lane-liveness, one 4-bit mask per instruction: bit l set
/// when some later consumer can observe lane l of the value the
/// instruction defines (stores carry 0xF). Exact for coalesced
/// register-reusing code, not just SSA. Shared by the tiled VM (skips dead
/// lanes) and the C code generator (emits live lanes only).
std::vector<std::uint8_t> live_lane_masks(const Program& program);

}  // namespace dfg::kernels
