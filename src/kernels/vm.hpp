// Kernel layer: bytecode virtual machine.
//
// Executes a Program for a contiguous range of global ids, reading buffer
// parameters through BufferBinding views and writing the output buffer.
// This is the "device" compute engine behind CommandQueue::launch: the
// strategies build a KernelLaunch whose body calls run() on a chunk.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "kernels/program.hpp"

namespace dfg::kernels {

/// A read-only view of one bound buffer argument.
struct BufferBinding {
  const float* data = nullptr;
  std::size_t elements = 0;  ///< total floats in the buffer
};

/// Executes `program` for global ids [begin, end).
///
/// * inputs must match program.params() in count; a `is_vec` parameter must
///   hold 4 floats per element.
/// * out must hold program.out_stride() floats per element over the full
///   NDRange (it is indexed with absolute global ids).
/// * Bounds and binding-shape violations throw KernelError; the grad3d
///   opcode additionally validates the dims/coordinate buffers once per
///   call.
void run(const Program& program, std::span<const BufferBinding> inputs,
         float* out, std::size_t out_elements, std::size_t begin,
         std::size_t end);

/// Convenience wrapper executing the whole NDRange serially (used by tests).
void run_all(const Program& program, std::span<const BufferBinding> inputs,
             std::span<float> out, std::size_t ndrange);

}  // namespace dfg::kernels
