// Kernel layer: native code generation for the jit backend.
//
// Turns one fused Program into a compiled shared object: render the C
// translation unit (source_printer::to_c_source), invoke the system C
// compiler (DFGEN_JIT_CC, `cc` by default), dlopen the result and resolve
// the entry point. This is the paper's runtime-codegen story made literal —
// where the PyOpenCL framework hands generated OpenCL C to the vendor
// compiler per expression, we hand generated C99 to the host toolchain and
// amortise the compile over every subsequent launch (compile-once,
// run-many via ProgramCache::jit_module).
//
// Compilation is strictly best-effort at the call sites: compile() throws
// KernelError naming the stage that failed (compiler exit status, dlopen,
// dlsym) and the jit backend degrades that program to the VM instead of
// failing the launch.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "kernels/program.hpp"
#include "kernels/vm.hpp"

namespace dfg::kernels::jit {

/// A loaded shared object and its resolved kernel entry point. Owns the
/// dlopen handle (released on destruction, so the module cache's eviction
/// unloads the object once the last outstanding kernel drops its
/// reference).
class Module {
 public:
  using EntryFn = void (*)(const float* const* bufs, float* out,
                           std::size_t begin, std::size_t end);

  Module(void* handle, EntryFn entry, std::string object_path);
  ~Module();
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// kernels::run semantics (absolute global ids, disjoint chunks are safe
  /// to execute concurrently). Runs the interpreters' prevalidation first
  /// so a malformed launch reports the same KernelError on every backend,
  /// then marshals the bindings' data pointers into the C ABI.
  void execute(const Program& program, std::span<const BufferBinding> inputs,
               float* out, std::size_t out_elements, std::size_t begin,
               std::size_t end) const;

  /// Path of the .so on disk (diagnostics and tests).
  const std::string& object_path() const { return object_path_; }

 private:
  void* handle_ = nullptr;
  EntryFn entry_ = nullptr;
  std::string object_path_;
};

/// The compiler command line prefix: DFGEN_JIT_CC when set, "cc"
/// otherwise. Re-read on every compile so a poisoned value can be fixed
/// without restarting the process (the module cache keys entries by
/// fingerprint *and* this command, so the fix is picked up immediately).
std::string compiler_command();

/// Renders, compiles and loads `program`. Artifacts live under a
/// per-process directory (<tmp>/dfgen-jit/p<pid>) so concurrent processes
/// never collide; the object is written to a .tmp name and renamed into
/// place only after the compiler succeeded. Throws KernelError on any
/// failure, with the tail of the compiler log when the toolchain is the
/// culprit.
std::shared_ptr<const Module> compile(const Program& program);

/// Best-effort cleanup of jit artifacts left behind by other, now-dead
/// processes (directory name encodes the owning pid; liveness is probed
/// with kill(pid, 0)) plus stray .tmp objects of our own crashed compiles.
/// Called once when the process-wide module cache first opens. Returns the
/// number of filesystem entries removed.
std::size_t reap_stale_artifacts();

}  // namespace dfg::kernels::jit
