#include "kernels/generator.hpp"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "kernels/optimizer.hpp"
#include "kernels/primitives.hpp"
#include "kernels/rewrites.hpp"
#include "support/error.hpp"

namespace dfg::kernels {

std::set<int> materialization_barriers(const dataflow::Network& network) {
  std::set<int> barriers;
  for (const dataflow::SpecNode& node : network.spec().nodes()) {
    if (node.kind != "grad3d") continue;
    const auto& field_input = network.spec().node(node.inputs[0]);
    if (field_input.type != dataflow::NodeType::field_source) {
      barriers.insert(field_input.id);
    }
  }
  return barriers;
}

namespace {

constexpr std::uint16_t kNoReg = UINT16_MAX;

/// Emits one fused program computing `target` from field sources and
/// previously materialised values (every barrier node except the target
/// itself becomes a __global buffer parameter).
class FusionEmitter {
 public:
  FusionEmitter(const dataflow::Network& network, std::string name,
                const std::set<int>& materialized, int target)
      : network_(network),
        builder_(std::move(name)),
        materialized_(materialized),
        target_(target) {}

  /// Emits exactly the subgraph `target_` depends on (used for
  /// materialisation stages, which must not duplicate unrelated work).
  Program run() {
    value_regs_.assign(network_.spec().nodes().size(), kNoReg);
    const std::uint16_t out_reg = reg_of(target_);
    return builder_.finish(out_reg,
                           network_.spec().node(target_).components);
  }

  /// Emits every network node (like the other strategies, which execute
  /// dead statements too), then stores the target. Keeps the fused
  /// kernel's parameter list — and therefore the Dev-W accounting —
  /// identical to roundtrip/staged on networks with unreachable
  /// statements; the explicit prune_unreachable option is the one way to
  /// drop dead code.
  /// `skip` lists nodes earlier pipeline stages already compute (their
  /// subgraphs); shared values the output still needs are pulled in by
  /// recursion through the materialised parameters.
  Program run_whole_network(const std::set<int>& skip = {}) {
    value_regs_.assign(network_.spec().nodes().size(), kNoReg);
    for (const int id : network_.topo_order()) {
      const dataflow::SpecNode& node = network_.spec().node(id);
      // Field sources stay lazy: a field consumed only by grad3d is a
      // buffer parameter, never a register load.
      if (node.type == dataflow::NodeType::field_source) continue;
      if (skip.count(id) != 0 && materialized_.count(id) == 0) continue;
      reg_of(id);
    }
    const std::uint16_t out_reg = reg_of(target_);
    return builder_.finish(out_reg,
                           network_.spec().node(target_).components);
  }

 private:
  bool is_buffer_input(int node_id) const {
    const auto& node = network_.spec().node(node_id);
    return node.type == dataflow::NodeType::field_source ||
           (materialized_.count(node_id) != 0 && node_id != target_);
  }

  /// Buffer slot for a field source or a materialised predecessor,
  /// created on first use.
  std::uint16_t param_slot(int node_id) {
    const auto& node = network_.spec().node(node_id);
    std::string name;
    if (node.type == dataflow::NodeType::field_source) {
      name = node.field_name;
    } else if (materialized_.count(node_id) != 0 && node_id != target_) {
      name = materialized_param_name(node_id);
    } else {
      throw KernelError(
          "fused kernel cannot take '" + node.label +
          "' as a buffer parameter: gradients of computed values require "
          "the partitioned fusion pipeline (generate_fused_pipeline); the "
          "streamed strategy does not support them");
    }
    const auto it = param_slots_.find(name);
    if (it != param_slots_.end()) return it->second;
    const std::uint16_t slot = builder_.add_param(name);
    param_slots_[name] = slot;
    return slot;
  }

  /// Register holding a node's value, computing it on demand.
  std::uint16_t reg_of(int node_id) {
    std::uint16_t cached = value_regs_[node_id];
    if (cached != kNoReg) return cached;

    const dataflow::SpecNode& node = network_.spec().node(node_id);
    std::uint16_t reg = kNoReg;
    if (is_buffer_input(node_id)) {
      // Buffer-backed scalars load from global memory exactly once.
      reg = builder_.emit_load_global(param_slot(node_id));
    } else if (node.type == dataflow::NodeType::constant) {
      // Source-code-level constant insertion: an immediate, not a buffer.
      reg = builder_.emit_load_const(static_cast<float>(node.const_value));
    } else {
      reg = emit_filter(node);
    }
    value_regs_[node_id] = reg;
    return reg;
  }

  std::uint16_t emit_filter(const dataflow::SpecNode& node) {
    const std::string& kind = node.kind;
    if (kind == "grad3d") {
      // Bind parameters in argument order (function-argument evaluation
      // order is unspecified, and the parameter list is user-visible).
      // The field operand may be a field source or a materialised value;
      // either way the stencil reads its buffer directly.
      const std::uint16_t field = param_slot(node.inputs[0]);
      const std::uint16_t dims = param_slot(node.inputs[1]);
      const std::uint16_t x = param_slot(node.inputs[2]);
      const std::uint16_t y = param_slot(node.inputs[3]);
      const std::uint16_t z = param_slot(node.inputs[4]);
      return builder_.emit_grad3d(field, dims, x, y, z);
    }
    if (kind == "decompose") {
      return builder_.emit_component(reg_of(node.inputs[0]), node.component);
    }
    if (kind == "select") {
      const std::uint16_t cond = reg_of(node.inputs[0]);
      const std::uint16_t then_value = reg_of(node.inputs[1]);
      const std::uint16_t else_value = reg_of(node.inputs[2]);
      return builder_.emit_select(cond, then_value, else_value);
    }
    if (kind == "pack3") {
      const std::uint16_t a = reg_of(node.inputs[0]);
      const std::uint16_t b = reg_of(node.inputs[1]);
      const std::uint16_t c = reg_of(node.inputs[2]);
      return builder_.emit_pack(a, b, c);
    }
    const PrimitiveInfo* info = find_primitive(kind);
    if (info != nullptr && info->arity == 1) {
      return builder_.emit_unary(unary_opcode_for(kind),
                                 reg_of(node.inputs[0]));
    }
    if (info != nullptr && info->arity == 2) {
      const std::uint16_t lhs = reg_of(node.inputs[0]);
      const std::uint16_t rhs = reg_of(node.inputs[1]);
      return builder_.emit_binary(binary_opcode_for(kind), lhs, rhs);
    }
    throw KernelError("fusion generator cannot emit filter '" + kind + "'");
  }

  const dataflow::Network& network_;
  ProgramBuilder builder_;
  const std::set<int>& materialized_;
  int target_;
  std::map<std::string, std::uint16_t> param_slots_;
  std::vector<std::uint16_t> value_regs_;
};

}  // namespace

std::string materialized_param_name(int node_id) {
  return "__m" + std::to_string(node_id);
}

Program generate_fused(const dataflow::Network& network,
                       const std::string& kernel_name) {
  const std::set<int> barriers = materialization_barriers(network);
  if (!barriers.empty()) {
    throw KernelError(
        "network takes the gradient of a computed value ('" +
        network.spec().node(*barriers.begin()).label +
        "'); a single fused kernel cannot stencil registers — use "
        "generate_fused_pipeline (the fusion strategy does this "
        "automatically)");
  }
  FusionEmitter emitter(network, kernel_name, barriers,
                        network.output_id());
  return emitter.run_whole_network();
}

FusedPipeline generate_fused_pipeline(const dataflow::Network& network,
                                      const std::string& kernel_name,
                                      bool optimize) {
  if (optimize) {
    // Pre-codegen rewrite pass: algebraic, bit-exact simplifications on
    // the network itself, shared by every backend the generated programs
    // later run under. Node ids are preserved, so stage resolution and
    // materialised-parameter naming downstream are unaffected; the
    // recursion terminates because a rewritten spec rewrites to zero
    // further edge moves.
    NetworkRewriteStats rewrites;
    dataflow::NetworkSpec rewritten =
        rewrite_network(network.spec(), &rewrites);
    if (rewrites.total() > 0) {
      return generate_fused_pipeline(dataflow::Network(std::move(rewritten)),
                                     kernel_name, optimize);
    }
  }
  const std::set<int> barriers = materialization_barriers(network);
  FusedPipeline pipeline;
  // Materialise barrier values in dependency order (topo order restricted
  // to the barrier set), then the network output — unless the output *is*
  // the last barrier.
  for (const int id : network.topo_order()) {
    if (barriers.count(id) == 0) continue;
    FusionEmitter emitter(
        network, kernel_name + "_m" + std::to_string(id), barriers, id);
    pipeline.stages.push_back(FusedPipeline::Stage{id, emitter.run()});
  }
  bool output_present = false;
  for (const FusedPipeline::Stage& stage : pipeline.stages) {
    if (stage.node_id == network.output_id()) output_present = true;
  }
  if (!output_present) {
    // Nodes the materialisation stages already compute: the barriers'
    // ancestor closures. Everything else — including statements reachable
    // from no output ("dead code", which the other strategies execute
    // too) — belongs to the final stage.
    std::set<int> covered;
    std::vector<int> stack(barriers.begin(), barriers.end());
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      if (!covered.insert(id).second) continue;
      for (const int in : network.spec().node(id).inputs) {
        stack.push_back(in);
      }
    }
    FusionEmitter emitter(network, kernel_name, barriers,
                          network.output_id());
    pipeline.stages.push_back(FusedPipeline::Stage{
        network.output_id(), emitter.run_whole_network(covered)});
  }
  if (optimize) pipeline = optimize_pipeline(std::move(pipeline));
  return pipeline;
}

}  // namespace dfg::kernels
