#include "kernels/optimizer.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

namespace dfg::kernels {

namespace {

constexpr std::uint16_t kNoReg = UINT16_MAX;

/// Backward observed-lane analysis: for each register, the set of lanes
/// (bit l = lane l) whose value some consumer can see. A constant fold may
/// only replace an instruction with load_const — which zeroes lanes 1..3 —
/// when no *observed* lane changes bit pattern. The code is SSA, so one
/// backward sweep finalises each mask before its definition is visited.
std::vector<std::uint8_t> observed_lanes(const std::vector<Instr>& code,
                                         std::uint16_t num_regs) {
  std::vector<std::uint8_t> observed(num_regs, 0);
  for (std::size_t idx = code.size(); idx-- > 0;) {
    const Instr& in = code[idx];
    switch (in.op) {
      case Op::store:
        observed[in.args[0]] |= 0x1;
        break;
      case Op::store_vec:
        observed[in.args[0]] |= 0xF;
        break;
      case Op::component:
        if (observed[in.dst] & 0x1) {
          observed[in.args[0]] |=
              static_cast<std::uint8_t>(1u << in.args[1]);
        }
        break;
      case Op::cmp_gt:
      case Op::cmp_lt:
      case Op::cmp_ge:
      case Op::cmp_le:
      case Op::cmp_eq:
      case Op::cmp_ne:
        if (observed[in.dst] & 0x1) {
          observed[in.args[0]] |= 0x1;
          observed[in.args[1]] |= 0x1;
        }
        break;
      case Op::select:
        if (observed[in.dst] != 0) {
          observed[in.args[0]] |= 0x1;
          observed[in.args[1]] |= observed[in.dst];
          observed[in.args[2]] |= observed[in.dst];
        }
        break;
      case Op::pack:
        // Lane l of a pack exposes lane 0 of operand l; the constant zero
        // in lane 3 observes nothing.
        for (int l = 0; l < 3; ++l) {
          if (observed[in.dst] & (1u << l)) {
            observed[in.args[static_cast<std::size_t>(l)]] |= 0x1;
          }
        }
        break;
      default:
        if (op_is_binary(in.op)) {
          observed[in.args[0]] |= observed[in.dst];
          observed[in.args[1]] |= observed[in.dst];
        } else if (op_is_unary(in.op)) {
          observed[in.args[0]] |= observed[in.dst];
        }
        // Loads and grad3d have no register operands.
        break;
    }
  }
  return observed;
}

/// Lane-wise evaluation with exactly the single-precision calls run() uses,
/// so folded constants are bit-identical to what the VM would compute.
template <typename F>
Vec4 lanewise(const Vec4& a, const Vec4& b, F f) {
  Vec4 r;
  for (int i = 0; i < 4; ++i) r[i] = f(a[i], b[i]);
  return r;
}

template <typename F>
Vec4 lanewise1(const Vec4& a, F f) {
  Vec4 r;
  for (int i = 0; i < 4; ++i) r[i] = f(a[i]);
  return r;
}

Vec4 scalar_result(float value) {
  Vec4 r;
  r[0] = value;
  return r;
}

/// Computes the value an instruction produces when every register operand
/// holds a known value. Returns nullopt for unfoldable opcodes (memory ops,
/// grad3d, select — the latter is handled by copy propagation instead).
std::optional<Vec4> fold_value(
    const Instr& in, const std::vector<std::optional<Vec4>>& known) {
  const auto k = [&](int idx) { return known[in.args[idx]]; };
  switch (in.op) {
    case Op::load_const:
      return scalar_result(in.imm);
    case Op::add:
      if (!k(0) || !k(1)) return std::nullopt;
      return lanewise(*k(0), *k(1), [](float a, float b) { return a + b; });
    case Op::sub:
      if (!k(0) || !k(1)) return std::nullopt;
      return lanewise(*k(0), *k(1), [](float a, float b) { return a - b; });
    case Op::mul:
      if (!k(0) || !k(1)) return std::nullopt;
      return lanewise(*k(0), *k(1), [](float a, float b) { return a * b; });
    case Op::div:
      if (!k(0) || !k(1)) return std::nullopt;
      return lanewise(*k(0), *k(1), [](float a, float b) { return a / b; });
    case Op::min:
      if (!k(0) || !k(1)) return std::nullopt;
      return lanewise(*k(0), *k(1),
                      [](float a, float b) { return std::fmin(a, b); });
    case Op::max:
      if (!k(0) || !k(1)) return std::nullopt;
      return lanewise(*k(0), *k(1),
                      [](float a, float b) { return std::fmax(a, b); });
    case Op::pow:
      if (!k(0) || !k(1)) return std::nullopt;
      return lanewise(*k(0), *k(1),
                      [](float a, float b) { return std::pow(a, b); });
    case Op::sqrt:
      if (!k(0)) return std::nullopt;
      return lanewise1(*k(0), [](float a) { return std::sqrt(a); });
    case Op::neg:
      if (!k(0)) return std::nullopt;
      return lanewise1(*k(0), [](float a) { return -a; });
    case Op::abs:
      if (!k(0)) return std::nullopt;
      return lanewise1(*k(0), [](float a) { return std::fabs(a); });
    case Op::sin:
      if (!k(0)) return std::nullopt;
      return lanewise1(*k(0), [](float a) { return std::sin(a); });
    case Op::cos:
      if (!k(0)) return std::nullopt;
      return lanewise1(*k(0), [](float a) { return std::cos(a); });
    case Op::tan:
      if (!k(0)) return std::nullopt;
      return lanewise1(*k(0), [](float a) { return std::tan(a); });
    case Op::acos:
      if (!k(0)) return std::nullopt;
      return lanewise1(*k(0), [](float a) { return std::acos(a); });
    case Op::pack:
      if (!k(0) || !k(1) || !k(2)) return std::nullopt;
      return Vec4{{(*k(0))[0], (*k(1))[0], (*k(2))[0], 0.0f}};
    case Op::exp:
      if (!k(0)) return std::nullopt;
      return lanewise1(*k(0), [](float a) { return std::exp(a); });
    case Op::log:
      if (!k(0)) return std::nullopt;
      return lanewise1(*k(0), [](float a) { return std::log(a); });
    case Op::tanh:
      if (!k(0)) return std::nullopt;
      return lanewise1(*k(0), [](float a) { return std::tanh(a); });
    case Op::floor:
      if (!k(0)) return std::nullopt;
      return lanewise1(*k(0), [](float a) { return std::floor(a); });
    case Op::ceil:
      if (!k(0)) return std::nullopt;
      return lanewise1(*k(0), [](float a) { return std::ceil(a); });
    case Op::component:
      if (!k(0)) return std::nullopt;
      return scalar_result((*k(0))[in.args[1]]);
    case Op::cmp_gt:
      if (!k(0) || !k(1)) return std::nullopt;
      return scalar_result((*k(0))[0] > (*k(1))[0] ? 1.0f : 0.0f);
    case Op::cmp_lt:
      if (!k(0) || !k(1)) return std::nullopt;
      return scalar_result((*k(0))[0] < (*k(1))[0] ? 1.0f : 0.0f);
    case Op::cmp_ge:
      if (!k(0) || !k(1)) return std::nullopt;
      return scalar_result((*k(0))[0] >= (*k(1))[0] ? 1.0f : 0.0f);
    case Op::cmp_le:
      if (!k(0) || !k(1)) return std::nullopt;
      return scalar_result((*k(0))[0] <= (*k(1))[0] ? 1.0f : 0.0f);
    case Op::cmp_eq:
      if (!k(0) || !k(1)) return std::nullopt;
      return scalar_result((*k(0))[0] == (*k(1))[0] ? 1.0f : 0.0f);
    case Op::cmp_ne:
      if (!k(0) || !k(1)) return std::nullopt;
      return scalar_result((*k(0))[0] != (*k(1))[0] ? 1.0f : 0.0f);
    default:
      return std::nullopt;
  }
}

using CseKey = std::tuple<std::uint8_t, std::uint16_t, std::uint16_t,
                          std::uint16_t, std::uint16_t, std::uint16_t,
                          std::uint32_t>;

CseKey cse_key(const Instr& in) {
  return {static_cast<std::uint8_t>(in.op), in.args[0], in.args[1],
          in.args[2],  in.args[3],          in.args[4],
          std::bit_cast<std::uint32_t>(in.imm)};
}

/// Forward rewrite: constant folding, select copy propagation and CSE.
/// The CSE map is keyed on instructions *as emitted* — if a definition was
/// replaced by load_const, later structurally identical expressions do not
/// merge with it unless their own observed lanes justify the same fold, so
/// merged registers always hold bit-identical values on every lane.
bool forward_pass(std::vector<Instr>& code, std::uint16_t num_regs,
                  OptimizerStats* stats) {
  const std::vector<std::uint8_t> observed = observed_lanes(code, num_regs);
  std::vector<std::optional<Vec4>> known(num_regs);
  std::vector<std::uint16_t> alias(num_regs);
  for (std::uint16_t r = 0; r < num_regs; ++r) alias[r] = r;
  std::map<CseKey, std::uint16_t> seen;

  std::vector<Instr> out;
  out.reserve(code.size());
  bool changed = false;
  for (const Instr& original : code) {
    Instr in = original;
    const int nops = instr_register_operands(in);
    for (int k = 0; k < nops; ++k) {
      const std::uint16_t resolved = alias[in.args[static_cast<std::size_t>(k)]];
      if (resolved != in.args[static_cast<std::size_t>(k)]) {
        in.args[static_cast<std::size_t>(k)] = resolved;
      }
    }

    // Select with a compile-time condition: forward the chosen branch (the
    // VM copies all four lanes of it, so aliasing is exact).
    if (in.op == Op::select && known[in.args[0]]) {
      const std::uint16_t chosen =
          (*known[in.args[0]])[0] != 0.0f ? in.args[1] : in.args[2];
      alias[in.dst] = chosen;
      ++stats->propagated_copies;
      changed = true;
      continue;
    }

    std::optional<Vec4> value = fold_value(in, known);
    if (value && in.op != Op::load_const) {
      // Replacing with load_const zeroes lanes 1..3; only legal when no
      // observed lane's bit pattern changes (+0.0 exactly — a NaN or -0.0
      // in an observed lane blocks the fold).
      bool replace = true;
      for (int lane = 1; lane < 4; ++lane) {
        if ((observed[in.dst] & (1u << lane)) != 0 &&
            std::bit_cast<std::uint32_t>((*value)[lane]) != 0) {
          replace = false;
          break;
        }
      }
      if (replace) {
        in = Instr{Op::load_const, in.dst, {}, (*value)[0]};
        value = scalar_result((*value)[0]);
        ++stats->folded_constants;
        changed = true;
      }
    }

    if (op_defines_register(in.op)) {
      const auto it = seen.find(cse_key(in));
      if (it != seen.end()) {
        // Identical emitted instruction => bit-identical value on every
        // lane; forward every use to the earlier register.
        alias[in.dst] = it->second;
        ++stats->eliminated_common;
        changed = true;
        continue;
      }
      seen.emplace(cse_key(in), in.dst);
      known[in.dst] = value;
    }
    out.push_back(in);
  }
  code = std::move(out);
  return changed;
}

/// Backward dead-code elimination. Roots: stores (the program output) and
/// grad3d (its buffer validation and dims slots anchor slab planning, so an
/// unused gradient keeps executing — matching how the other strategies run
/// dead statements).
bool dce(std::vector<Instr>& code, std::uint16_t num_regs,
         OptimizerStats* stats) {
  std::vector<char> live(num_regs, 0);
  std::vector<char> keep(code.size(), 0);
  for (std::size_t idx = code.size(); idx-- > 0;) {
    const Instr& in = code[idx];
    const bool root = in.op == Op::store || in.op == Op::store_vec ||
                      in.op == Op::grad3d;
    if (!root && !(op_defines_register(in.op) && live[in.dst])) continue;
    keep[idx] = 1;
    const int nops = instr_register_operands(in);
    for (int k = 0; k < nops; ++k) {
      live[in.args[static_cast<std::size_t>(k)]] = 1;
    }
  }
  std::vector<Instr> out;
  out.reserve(code.size());
  for (std::size_t idx = 0; idx < code.size(); ++idx) {
    if (keep[idx]) out.push_back(code[idx]);
  }
  const bool changed = out.size() != code.size();
  stats->removed_dead += code.size() - out.size();
  code = std::move(out);
  return changed;
}

/// Linear-scan register coalescing over SSA intervals. An operand whose
/// live range ends at an instruction frees its physical register *before*
/// the destination allocates, so dst may reuse an operand's register — the
/// tiled VM's opcode bodies are written to tolerate exactly that aliasing.
std::vector<Instr> coalesce(const std::vector<Instr>& code,
                            std::uint16_t num_regs,
                            std::uint16_t* out_num_regs) {
  std::vector<int> last_use(num_regs, -1);
  for (std::size_t idx = 0; idx < code.size(); ++idx) {
    const Instr& in = code[idx];
    const int nops = instr_register_operands(in);
    for (int k = 0; k < nops; ++k) {
      last_use[in.args[static_cast<std::size_t>(k)]] = static_cast<int>(idx);
    }
    if (op_defines_register(in.op) && last_use[in.dst] < static_cast<int>(idx)) {
      last_use[in.dst] = static_cast<int>(idx);
    }
  }

  std::vector<std::uint16_t> phys(num_regs, kNoReg);
  std::set<std::uint16_t> free_regs;
  std::uint16_t next_phys = 0;
  std::vector<Instr> out = code;
  for (std::size_t idx = 0; idx < out.size(); ++idx) {
    Instr& in = out[idx];
    const int nops = instr_register_operands(in);
    std::array<std::uint16_t, 5> orig{};
    for (int k = 0; k < nops; ++k) {
      orig[static_cast<std::size_t>(k)] = in.args[static_cast<std::size_t>(k)];
      in.args[static_cast<std::size_t>(k)] =
          phys[orig[static_cast<std::size_t>(k)]];
    }
    for (int k = 0; k < nops; ++k) {
      const std::uint16_t r = orig[static_cast<std::size_t>(k)];
      if (last_use[r] == static_cast<int>(idx)) {
        free_regs.insert(phys[r]);
      }
    }
    if (op_defines_register(in.op)) {
      const std::uint16_t ssa_dst = in.dst;
      std::uint16_t p;
      if (!free_regs.empty()) {
        p = *free_regs.begin();
        free_regs.erase(free_regs.begin());
      } else {
        p = next_phys++;
      }
      phys[ssa_dst] = p;
      in.dst = p;
      if (last_use[ssa_dst] == static_cast<int>(idx)) {
        // Defined but never read (e.g. a dead grad3d kept for its side
        // effects): release immediately.
        free_regs.insert(p);
      }
    }
  }
  *out_num_regs = next_phys;
  return out;
}

}  // namespace

Program optimize_program(const Program& program, OptimizerStats* stats) {
  OptimizerStats local;
  local.registers_before = program.register_count();

  std::vector<Instr> code = program.code();
  const std::uint16_t num_regs = program.register_count();
  bool changed = true;
  for (int round = 0; round < 4 && changed; ++round) {
    changed = false;
    if (forward_pass(code, num_regs, &local)) changed = true;
    if (dce(code, num_regs, &local)) changed = true;
  }

  // Metadata (flops/bytes per item, the register-pressure scan) is computed
  // on the SSA form — the liveness scan assumes single definitions — then
  // the coalesced code and its smaller register file are swapped in.
  Program result =
      Program::assemble(program.name(), code, program.params(), num_regs,
                        program.out_components());
  std::uint16_t packed_regs = 0;
  std::vector<Instr> packed = coalesce(code, num_regs, &packed_regs);
  result.code_ = std::move(packed);
  result.num_regs_ = packed_regs;

  local.registers_after = packed_regs;
  if (stats != nullptr) *stats = local;
  return result;
}

FusedPipeline optimize_pipeline(FusedPipeline pipeline) {
  for (FusedPipeline::Stage& stage : pipeline.stages) {
    stage.program = optimize_program(stage.program);
  }
  return pipeline;
}

}  // namespace dfg::kernels
