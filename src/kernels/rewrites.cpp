#include "kernels/rewrites.hpp"

#include <cstddef>
#include <vector>

namespace dfg::kernels {

namespace {

bool is_filter_kind(const dataflow::SpecNode& node, const char* kind) {
  return node.type == dataflow::NodeType::filter && node.kind == kind;
}

}  // namespace

dataflow::NetworkSpec rewrite_network(const dataflow::NetworkSpec& spec,
                                      NetworkRewriteStats* stats) {
  dataflow::NetworkSpec out = spec;
  const std::vector<dataflow::SpecNode>& nodes = out.nodes();
  NetworkRewriteStats local;

  // rep[id]: the node that provides id's value after rewriting — id
  // itself unless id heads a neg(neg(...)) or abs(abs(...)) pattern.
  // rep_rule remembers which rule moved it, for stats classification.
  // Ascending id order (ids are construction order, producers first)
  // makes each producer's rep final before any consumer reads it, so one
  // pass reaches the fixed point.
  enum : char { kNone = 0, kDoubleNeg, kNestedAbs, kPackLane };
  std::vector<int> rep(nodes.size());
  std::vector<char> rep_rule(nodes.size(), kNone);
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    rep[id] = static_cast<int>(id);
  }

  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const dataflow::SpecNode& node = nodes[id];
    if (node.type != dataflow::NodeType::filter) continue;

    if (is_filter_kind(node, "neg")) {
      const dataflow::SpecNode& producer = nodes[rep[node.inputs[0]]];
      if (is_filter_kind(producer, "neg")) {
        // neg(neg(x)) -> x: consumers skip both sign flips. The node
        // itself stays intact (it may be the network output, which is
        // never eliminated).
        rep[id] = rep[producer.inputs[0]];
        rep_rule[id] = kDoubleNeg;
      }
    }

    if (is_filter_kind(node, "decompose")) {
      const dataflow::SpecNode& producer = nodes[rep[node.inputs[0]]];
      if (is_filter_kind(producer, "pack3")) {
        // decompose(pack3(a,b,c), i) -> operand i: lane i of a pack holds
        // exactly the scalar that was packed into it, so consumers read
        // the operand directly and both the pack and the decompose become
        // dead code unless something else (e.g. a store_vec of the whole
        // pack) still needs them.
        rep[id] =
            rep[producer.inputs[static_cast<std::size_t>(node.component)]];
        rep_rule[id] = kPackLane;
      }
    }

    // Redirect every input edge through the finished reps. grad3d is
    // exempt: its field operand defines materialisation barriers, and
    // moving one would shift the stage partitioning under the strategies.
    if (node.kind == "grad3d") continue;
    for (std::size_t arg = 0; arg < node.inputs.size(); ++arg) {
      const int original = node.inputs[arg];
      int desired = rep[original];
      bool hopped_neg = false;
      if (is_filter_kind(node, "abs")) {
        const dataflow::SpecNode& producer = nodes[desired];
        if (is_filter_kind(producer, "abs")) {
          // abs(abs(x)) -> abs(x): this node's value *is* the inner abs.
          rep[id] = desired;
          rep_rule[id] = kNestedAbs;
        } else if (is_filter_kind(producer, "neg")) {
          // abs(neg(x)) -> abs(x): the sign flip is discarded anyway.
          desired = rep[producer.inputs[0]];
          hopped_neg = true;
        }
      }
      if (desired == original) continue;
      if (hopped_neg) {
        ++local.abs_of_negation;
      } else if (rep_rule[original] == kNestedAbs) {
        ++local.nested_abs;
      } else if (rep_rule[original] == kPackLane) {
        ++local.decompose_of_pack;
      } else {
        ++local.double_negation;
      }
      out.rewire_input(static_cast<int>(id), arg, desired);
    }
  }

  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace dfg::kernels
