// Kernel layer: bytecode optimizer.
//
// A small pass pipeline run over fused programs before execution, standing
// in for the optimisations an OpenCL driver JIT applies to the paper's
// generated source:
//   * constant folding (source-level constants combine at generation time),
//   * common-subexpression elimination (exact structural matches only —
//     operands are never commuted, so NaN-payload propagation is preserved),
//   * select copy propagation when the condition is a known constant,
//   * dead-code elimination (stores and grad3d instructions are roots:
//     grad3d anchors slab planning and buffer validation, so even an unused
//     gradient keeps its instruction),
//   * register coalescing via linear scan, shrinking register_count() so
//     the tiled VM touches a smaller workspace.
//
// Every transform is bit-exact: folded values are computed with the same
// single-precision std:: calls the VM executes, and a fold is only allowed
// to replace an instruction when no consumer observes a lane the
// replacement would change.
#pragma once

#include <cstddef>

#include "kernels/generator.hpp"
#include "kernels/program.hpp"

namespace dfg::kernels {

/// Counters describing what optimize_program did (for logs and tests).
struct OptimizerStats {
  std::size_t folded_constants = 0;   ///< instructions replaced by load_const
  std::size_t eliminated_common = 0;  ///< CSE-merged instructions
  std::size_t removed_dead = 0;       ///< instructions dropped by DCE
  std::size_t propagated_copies = 0;  ///< selects resolved at compile time
  int registers_before = 0;
  int registers_after = 0;
};

/// Returns an optimized, semantically bit-identical copy of `program`.
/// Cost metadata (flops/bytes per item, max live registers) is recomputed
/// from the optimized instruction sequence. The parameter list is preserved
/// verbatim so buffer accounting and kernel signatures do not change.
Program optimize_program(const Program& program,
                         OptimizerStats* stats = nullptr);

/// Optimizes every stage of a fused pipeline in place.
FusedPipeline optimize_pipeline(FusedPipeline pipeline);

}  // namespace dfg::kernels
