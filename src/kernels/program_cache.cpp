#include "kernels/program_cache.hpp"

#include <bit>
#include <utility>

#include "kernels/primitives.hpp"
#include "obs/metrics.hpp"
#include "support/env.hpp"
#include "support/error.hpp"

namespace dfg::kernels {

namespace {

// Per-thread attribution lives in the metrics registry's thread shards
// (one series per cache/result pair), not in a second thread_local mirror:
// the counters are monotonic and never reset, so a worker thread reused
// across two sessions always attributes each evaluation's traffic by
// before/after deltas with no reset point to race on.
obs::MetricId requests_counter(const char* cache, const char* result) {
  obs::MetricsRegistry& reg = obs::metrics();
  return reg.counter("dfgen_cache_requests_total",
                     {{"cache", cache}, {"result", result}});
}

void count_request(const char* cache, const char* result) {
  obs::metrics().add(requests_counter(cache, result));
}

void count_evictions(const char* cache, std::size_t dropped) {
  if (dropped == 0) return;
  obs::MetricsRegistry& reg = obs::metrics();
  reg.add(reg.counter("dfgen_cache_evictions_total", {{"cache", cache}}),
          dropped);
}

}  // namespace

ProgramCache::ProgramCache()
    : caching_enabled_(!support::env::get_flag("DFGEN_NO_PROGRAM_CACHE")),
      optimizer_enabled_(!support::env::get_flag("DFGEN_NO_VM_OPTIMIZER")) {}

ProgramCache& ProgramCache::instance() {
  static ProgramCache cache;
  return cache;
}

std::shared_ptr<const FusedPipeline> ProgramCache::fused_pipeline(
    const dataflow::Network& network, const std::string& kernel_name) {
  std::unique_lock lock(mutex_);
  const bool optimize = optimizer_enabled_;
  const PipelineKey key{network.fingerprint(), kernel_name, optimize};
  if (caching_enabled_) {
    const auto it = pipelines_.find(key);
    if (it != pipelines_.end()) {
      ++stats_.pipeline_hits;
      count_request("pipeline", "hit");
      return it->second;
    }
  }
  ++stats_.pipeline_misses;
  count_request("pipeline", "miss");
  // Generation can be slow; run it outside the lock (a racing thread may
  // generate the same pipeline — both results are identical, last wins).
  lock.unlock();
  auto pipeline = std::make_shared<const FusedPipeline>(
      generate_fused_pipeline(network, kernel_name, optimize));
  lock.lock();
  if (caching_enabled_) pipelines_[key] = pipeline;
  return pipeline;
}

std::shared_ptr<const Program> ProgramCache::fused_single(
    const dataflow::Network& network, const std::string& kernel_name) {
  std::shared_ptr<const FusedPipeline> pipeline =
      fused_pipeline(network, kernel_name);
  if (pipeline->partitioned()) {
    const std::set<int> barriers = materialization_barriers(network);
    throw KernelError(
        "network takes the gradient of a computed value ('" +
        network.spec().node(*barriers.begin()).label +
        "'); a single fused kernel cannot stencil registers — use "
        "generate_fused_pipeline (the fusion strategy does this "
        "automatically)");
  }
  // Aliasing shared_ptr: shares ownership of the pipeline, points at its
  // only stage's program.
  return std::shared_ptr<const Program>(pipeline,
                                        &pipeline->stages.front().program);
}

std::shared_ptr<const Program> ProgramCache::standalone(
    const std::string& kind, int component, float value) {
  std::unique_lock lock(mutex_);
  const StandaloneKey key{kind, component, std::bit_cast<std::uint32_t>(value)};
  if (caching_enabled_) {
    const auto it = standalones_.find(key);
    if (it != standalones_.end()) {
      ++stats_.standalone_hits;
      count_request("standalone", "hit");
      return it->second;
    }
  }
  ++stats_.standalone_misses;
  count_request("standalone", "miss");
  lock.unlock();
  auto program = std::make_shared<const Program>(
      make_standalone_program(kind, component, value));
  lock.lock();
  if (caching_enabled_) standalones_[key] = program;
  return program;
}

ProgramCacheStats ProgramCache::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

ProgramCacheStats ProgramCache::thread_stats() const {
  // Reads the calling thread's metrics shard: no lock, no other thread
  // ever writes those slots.
  obs::MetricsRegistry& reg = obs::metrics();
  ProgramCacheStats stats;
  stats.pipeline_hits =
      reg.thread_counter_value(requests_counter("pipeline", "hit"));
  stats.pipeline_misses =
      reg.thread_counter_value(requests_counter("pipeline", "miss"));
  stats.standalone_hits =
      reg.thread_counter_value(requests_counter("standalone", "hit"));
  stats.standalone_misses =
      reg.thread_counter_value(requests_counter("standalone", "miss"));
  return stats;
}

void ProgramCache::reset_stats() {
  std::scoped_lock lock(mutex_);
  stats_ = ProgramCacheStats{};
}

void ProgramCache::clear() {
  std::scoped_lock lock(mutex_);
  count_evictions("pipeline", pipelines_.size());
  count_evictions("standalone", standalones_.size());
  pipelines_.clear();
  standalones_.clear();
}

void ProgramCache::set_caching_enabled(bool enabled) {
  std::scoped_lock lock(mutex_);
  caching_enabled_ = enabled;
  if (!enabled) {
    count_evictions("pipeline", pipelines_.size());
    count_evictions("standalone", standalones_.size());
    pipelines_.clear();
    standalones_.clear();
  }
}

void ProgramCache::set_optimizer_enabled(bool enabled) {
  std::scoped_lock lock(mutex_);
  optimizer_enabled_ = enabled;
}

}  // namespace dfg::kernels
