#include "kernels/program_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <utility>

#include "kernels/primitives.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/checksum.hpp"
#include "support/env.hpp"
#include "support/error.hpp"

namespace dfg::kernels {

namespace {

// Per-thread attribution lives in the metrics registry's thread shards
// (one series per cache/result pair), not in a second thread_local mirror:
// the counters are monotonic and never reset, so a worker thread reused
// across two sessions always attributes each evaluation's traffic by
// before/after deltas with no reset point to race on.
obs::MetricId requests_counter(const char* cache, const char* result) {
  obs::MetricsRegistry& reg = obs::metrics();
  return reg.counter("dfgen_cache_requests_total",
                     {{"cache", cache}, {"result", result}});
}

void count_request(const char* cache, const char* result) {
  obs::metrics().add(requests_counter(cache, result));
}

void count_evictions(const char* cache, std::size_t dropped) {
  if (dropped == 0) return;
  obs::MetricsRegistry& reg = obs::metrics();
  reg.add(reg.counter("dfgen_cache_evictions_total", {{"cache", cache}}),
          dropped);
}

// Flat (unlabeled) jit counters — the engine registers the full set
// eagerly so metrics goldens stay schema-complete even for runs that never
// touch the jit backend.
void count_jit(const char* name, std::uint64_t delta = 1) {
  if (delta == 0) return;
  obs::MetricsRegistry& reg = obs::metrics();
  reg.add(reg.counter(name), delta);
}

}  // namespace

ProgramCache::ProgramCache()
    : jit_capacity_(static_cast<std::size_t>(
          std::max(0, support::env::get_int("DFGEN_JIT_CACHE_CAP", 64)))),
      caching_enabled_(!support::env::get_flag("DFGEN_NO_PROGRAM_CACHE")),
      optimizer_enabled_(!support::env::get_flag("DFGEN_NO_VM_OPTIMIZER")) {}

ProgramCache& ProgramCache::instance() {
  static ProgramCache cache;
  return cache;
}

std::shared_ptr<const FusedPipeline> ProgramCache::fused_pipeline(
    const dataflow::Network& network, const std::string& kernel_name) {
  std::unique_lock lock(mutex_);
  const bool optimize = optimizer_enabled_;
  const PipelineKey key{network.fingerprint(), kernel_name, optimize};
  if (caching_enabled_) {
    const auto it = pipelines_.find(key);
    if (it != pipelines_.end()) {
      ++stats_.pipeline_hits;
      count_request("pipeline", "hit");
      return it->second;
    }
  }
  ++stats_.pipeline_misses;
  count_request("pipeline", "miss");
  // Generation can be slow; run it outside the lock (a racing thread may
  // generate the same pipeline — both results are identical, last wins).
  lock.unlock();
  auto pipeline = std::make_shared<const FusedPipeline>(
      generate_fused_pipeline(network, kernel_name, optimize));
  lock.lock();
  if (caching_enabled_) pipelines_[key] = pipeline;
  return pipeline;
}

std::shared_ptr<const Program> ProgramCache::fused_single(
    const dataflow::Network& network, const std::string& kernel_name) {
  std::shared_ptr<const FusedPipeline> pipeline =
      fused_pipeline(network, kernel_name);
  if (pipeline->partitioned()) {
    const std::set<int> barriers = materialization_barriers(network);
    throw KernelError(
        "network takes the gradient of a computed value ('" +
        network.spec().node(*barriers.begin()).label +
        "'); a single fused kernel cannot stencil registers — use "
        "generate_fused_pipeline (the fusion strategy does this "
        "automatically)");
  }
  // Aliasing shared_ptr: shares ownership of the pipeline, points at its
  // only stage's program.
  return std::shared_ptr<const Program>(pipeline,
                                        &pipeline->stages.front().program);
}

std::shared_ptr<const Program> ProgramCache::standalone(
    const std::string& kind, int component, float value) {
  std::unique_lock lock(mutex_);
  const StandaloneKey key{kind, component, std::bit_cast<std::uint32_t>(value)};
  if (caching_enabled_) {
    const auto it = standalones_.find(key);
    if (it != standalones_.end()) {
      ++stats_.standalone_hits;
      count_request("standalone", "hit");
      return it->second;
    }
  }
  ++stats_.standalone_misses;
  count_request("standalone", "miss");
  lock.unlock();
  auto program = std::make_shared<const Program>(
      make_standalone_program(kind, component, value));
  lock.lock();
  if (caching_enabled_) standalones_[key] = program;
  return program;
}

std::shared_ptr<const jit::Module> ProgramCache::jit_module(
    const Program& program) {
  // Key by compiler command as well as fingerprint: flipping DFGEN_JIT_CC
  // must both invalidate modules built by another toolchain and retry
  // negative-cached failures from a broken one.
  const std::string cc = jit::compiler_command();
  const std::uint64_t key =
      program.fingerprint() ^ support::fnv1a(cc.data(), cc.size());

  std::unique_lock lock(mutex_);
  if (!jit_reaped_) {
    jit_reaped_ = true;
    lock.unlock();
    jit::reap_stale_artifacts();
    lock.lock();
  }
  ++jit_tick_;
  const auto it = jit_modules_.find(key);
  if (it != jit_modules_.end()) {
    it->second.last_use = jit_tick_;
    ++jit_stats_.hits;
    count_jit("dfgen_jit_cache_hits_total");
    // A racing thread may still be compiling this slot; get() blocks until
    // it publishes. Copy the future out so the wait happens unlocked.
    const auto ready = it->second.ready;
    lock.unlock();
    return ready.get();
  }

  ++jit_stats_.misses;
  ++jit_stats_.compiles;
  count_jit("dfgen_jit_cache_misses_total");
  count_jit("dfgen_jit_compiles_total");
  std::promise<std::shared_ptr<const jit::Module>> promise;
  JitSlot& slot = jit_modules_[key];
  slot.ready = promise.get_future().share();
  slot.last_use = jit_tick_;
  slot.in_flight = true;
  lock.unlock();

  // The toolchain invocation runs outside the lock (it dominates any
  // cache operation by orders of magnitude); the in-flight slot already in
  // the map makes racing requests join this compile instead of starting
  // their own. Charged as a one-time span so traces show compile latency
  // separated from launch time.
  std::shared_ptr<const jit::Module> module;
  std::string failure;
  {
    obs::Span span("jit_compile:" + program.name(), "compile");
    try {
      module = jit::compile(program);
    } catch (const std::exception& e) {
      failure = e.what();
    }
  }
  promise.set_value(module);

  lock.lock();
  const auto mine = jit_modules_.find(key);
  if (mine != jit_modules_.end()) mine->second.in_flight = false;
  if (module == nullptr) {
    ++jit_stats_.compile_failures;
    count_jit("dfgen_jit_compile_failures_total");
  }
  evict_jit_locked();
  lock.unlock();

  if (!failure.empty()) {
    std::fprintf(stderr, "[dfgen] %s\n", failure.c_str());
  }
  return module;
}

std::size_t ProgramCache::jit_capacity() const {
  std::scoped_lock lock(mutex_);
  return jit_capacity_;
}

void ProgramCache::set_jit_capacity(std::size_t capacity) {
  std::scoped_lock lock(mutex_);
  jit_capacity_ = capacity;
  evict_jit_locked();
}

JitCacheStats ProgramCache::jit_stats() const {
  std::scoped_lock lock(mutex_);
  return jit_stats_;
}

void ProgramCache::evict_jit_locked() {
  while (jit_modules_.size() > jit_capacity_) {
    auto victim = jit_modules_.end();
    for (auto it = jit_modules_.begin(); it != jit_modules_.end(); ++it) {
      if (it->second.in_flight) continue;
      if (victim == jit_modules_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == jit_modules_.end()) break;  // every slot is compiling
    jit_modules_.erase(victim);
    ++jit_stats_.evictions;
    count_jit("dfgen_jit_cache_evictions_total");
  }
}

ProgramCacheStats ProgramCache::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

ProgramCacheStats ProgramCache::thread_stats() const {
  // Reads the calling thread's metrics shard: no lock, no other thread
  // ever writes those slots.
  obs::MetricsRegistry& reg = obs::metrics();
  ProgramCacheStats stats;
  stats.pipeline_hits =
      reg.thread_counter_value(requests_counter("pipeline", "hit"));
  stats.pipeline_misses =
      reg.thread_counter_value(requests_counter("pipeline", "miss"));
  stats.standalone_hits =
      reg.thread_counter_value(requests_counter("standalone", "hit"));
  stats.standalone_misses =
      reg.thread_counter_value(requests_counter("standalone", "miss"));
  return stats;
}

void ProgramCache::reset_stats() {
  std::scoped_lock lock(mutex_);
  stats_ = ProgramCacheStats{};
}

void ProgramCache::clear() {
  std::scoped_lock lock(mutex_);
  count_evictions("pipeline", pipelines_.size());
  count_evictions("standalone", standalones_.size());
  pipelines_.clear();
  standalones_.clear();
  // Jit modules are dropped too (kernels holding a module keep it loaded
  // until they finish); in-flight slots stay — erasing one would detach a
  // compile that is about to publish into it.
  std::size_t dropped = 0;
  for (auto it = jit_modules_.begin(); it != jit_modules_.end();) {
    if (it->second.in_flight) {
      ++it;
    } else {
      it = jit_modules_.erase(it);
      ++dropped;
    }
  }
  jit_stats_.evictions += dropped;
  count_jit("dfgen_jit_cache_evictions_total", dropped);
}

void ProgramCache::set_caching_enabled(bool enabled) {
  std::scoped_lock lock(mutex_);
  caching_enabled_ = enabled;
  if (!enabled) {
    count_evictions("pipeline", pipelines_.size());
    count_evictions("standalone", standalones_.size());
    pipelines_.clear();
    standalones_.clear();
  }
}

void ProgramCache::set_optimizer_enabled(bool enabled) {
  std::scoped_lock lock(mutex_);
  optimizer_enabled_ = enabled;
}

}  // namespace dfg::kernels
