#include "kernels/program_cache.hpp"

#include <bit>
#include <utility>

#include "kernels/primitives.hpp"
#include "support/env.hpp"
#include "support/error.hpp"

namespace dfg::kernels {

namespace {
// Per-thread mirror of the process-wide counters (see thread_stats()).
thread_local ProgramCacheStats t_stats;
}  // namespace

ProgramCache::ProgramCache()
    : caching_enabled_(!support::env::get_flag("DFGEN_NO_PROGRAM_CACHE")),
      optimizer_enabled_(!support::env::get_flag("DFGEN_NO_VM_OPTIMIZER")) {}

ProgramCache& ProgramCache::instance() {
  static ProgramCache cache;
  return cache;
}

std::shared_ptr<const FusedPipeline> ProgramCache::fused_pipeline(
    const dataflow::Network& network, const std::string& kernel_name) {
  std::unique_lock lock(mutex_);
  const bool optimize = optimizer_enabled_;
  const PipelineKey key{network.fingerprint(), kernel_name, optimize};
  if (caching_enabled_) {
    const auto it = pipelines_.find(key);
    if (it != pipelines_.end()) {
      ++stats_.pipeline_hits;
      ++t_stats.pipeline_hits;
      return it->second;
    }
  }
  ++stats_.pipeline_misses;
  ++t_stats.pipeline_misses;
  // Generation can be slow; run it outside the lock (a racing thread may
  // generate the same pipeline — both results are identical, last wins).
  lock.unlock();
  auto pipeline = std::make_shared<const FusedPipeline>(
      generate_fused_pipeline(network, kernel_name, optimize));
  lock.lock();
  if (caching_enabled_) pipelines_[key] = pipeline;
  return pipeline;
}

std::shared_ptr<const Program> ProgramCache::fused_single(
    const dataflow::Network& network, const std::string& kernel_name) {
  std::shared_ptr<const FusedPipeline> pipeline =
      fused_pipeline(network, kernel_name);
  if (pipeline->partitioned()) {
    const std::set<int> barriers = materialization_barriers(network);
    throw KernelError(
        "network takes the gradient of a computed value ('" +
        network.spec().node(*barriers.begin()).label +
        "'); a single fused kernel cannot stencil registers — use "
        "generate_fused_pipeline (the fusion strategy does this "
        "automatically)");
  }
  // Aliasing shared_ptr: shares ownership of the pipeline, points at its
  // only stage's program.
  return std::shared_ptr<const Program>(pipeline,
                                        &pipeline->stages.front().program);
}

std::shared_ptr<const Program> ProgramCache::standalone(
    const std::string& kind, int component, float value) {
  std::unique_lock lock(mutex_);
  const StandaloneKey key{kind, component, std::bit_cast<std::uint32_t>(value)};
  if (caching_enabled_) {
    const auto it = standalones_.find(key);
    if (it != standalones_.end()) {
      ++stats_.standalone_hits;
      ++t_stats.standalone_hits;
      return it->second;
    }
  }
  ++stats_.standalone_misses;
  ++t_stats.standalone_misses;
  lock.unlock();
  auto program = std::make_shared<const Program>(
      make_standalone_program(kind, component, value));
  lock.lock();
  if (caching_enabled_) standalones_[key] = program;
  return program;
}

ProgramCacheStats ProgramCache::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

ProgramCacheStats ProgramCache::thread_stats() const {
  // Thread-local: no lock needed, no other thread ever writes it.
  return t_stats;
}

void ProgramCache::reset_stats() {
  std::scoped_lock lock(mutex_);
  stats_ = ProgramCacheStats{};
}

void ProgramCache::clear() {
  std::scoped_lock lock(mutex_);
  pipelines_.clear();
  standalones_.clear();
}

void ProgramCache::set_caching_enabled(bool enabled) {
  std::scoped_lock lock(mutex_);
  caching_enabled_ = enabled;
  if (!enabled) {
    pipelines_.clear();
    standalones_.clear();
  }
}

void ProgramCache::set_optimizer_enabled(bool enabled) {
  std::scoped_lock lock(mutex_);
  optimizer_enabled_ = enabled;
}

}  // namespace dfg::kernels
