#include "kernels/jit.hpp"

#include <dlfcn.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "kernels/source_printer.hpp"
#include "support/env.hpp"
#include "support/error.hpp"

namespace dfg::kernels::jit {

namespace {

namespace fs = std::filesystem;

fs::path jit_root() {
  std::error_code ec;
  fs::path tmp = fs::temp_directory_path(ec);
  if (ec) tmp = "/tmp";
  return tmp / "dfgen-jit";
}

fs::path process_dir() {
  return jit_root() / ("p" + std::to_string(static_cast<long>(getpid())));
}

/// Tail of the compiler log, for error messages. Bounded so a pathological
/// compiler cannot balloon the exception text.
std::string log_tail(const fs::path& log_path) {
  std::ifstream in(log_path);
  if (!in) return "(no compiler output captured)";
  std::ostringstream os;
  os << in.rdbuf();
  std::string text = os.str();
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  constexpr std::size_t kMaxTail = 512;
  if (text.size() > kMaxTail) {
    text = "..." + text.substr(text.size() - kMaxTail);
  }
  return text.empty() ? "(empty compiler output)" : text;
}

/// Shell-quotes one word for the sh -c command std::system runs.
std::string quoted(const std::string& word) {
  std::string out = "'";
  for (const char c : word) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

}  // namespace

Module::Module(void* handle, EntryFn entry, std::string object_path)
    : handle_(handle), entry_(entry), object_path_(std::move(object_path)) {}

Module::~Module() {
  if (handle_ != nullptr) dlclose(handle_);
}

void Module::execute(const Program& program,
                     std::span<const BufferBinding> inputs, float* out,
                     std::size_t out_elements, std::size_t begin,
                     std::size_t end) const {
  validate_launch(program, inputs, out_elements, begin, end);
  const std::size_t n = inputs.size();
  const float* stack_bufs[64];
  std::vector<const float*> heap_bufs;
  const float** bufs = stack_bufs;
  if (n > std::size(stack_bufs)) {
    heap_bufs.resize(n);
    bufs = heap_bufs.data();
  }
  for (std::size_t i = 0; i < n; ++i) bufs[i] = inputs[i].data;
  entry_(bufs, out, begin, end);
}

std::string compiler_command() {
  return support::env::get_string("DFGEN_JIT_CC", "cc");
}

std::shared_ptr<const Module> compile(const Program& program) {
  // Monotonic per-process counter keeps artifact names unique even when
  // the same fingerprint is recompiled (cache cleared, compiler changed).
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t serial = counter.fetch_add(1);

  const fs::path dir = process_dir();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw KernelError("jit: cannot create artifact directory " +
                      dir.string() + ": " + ec.message());
  }

  char base[64];
  std::snprintf(base, sizeof(base), "k%llu_%016llx",
                static_cast<unsigned long long>(serial),
                static_cast<unsigned long long>(program.fingerprint()));
  const fs::path c_path = dir / (std::string(base) + ".c");
  const fs::path so_path = dir / (std::string(base) + ".so");
  const fs::path tmp_path = dir / (std::string(base) + ".so.tmp");
  const fs::path log_path = dir / (std::string(base) + ".log");

  {
    std::ofstream src(c_path);
    src << to_c_source(program);
    if (!src) {
      throw KernelError("jit: cannot write " + c_path.string());
    }
  }

  // -ffp-contract=off: the generated statements mirror the interpreters
  // one operation at a time; fusing any of them into an fma would change
  // rounding and break the bit-exactness contract. -fno-math-errno matches
  // how the interpreters' libm calls are compiled.
  const std::string command =
      compiler_command() +
      // -march=native is the jit's structural advantage over the
      // ahead-of-time-built VM: the kernel compiles on the machine that
      // runs it, so the widest vector ISA the host has is always safe to
      // use. Bit-exactness holds at any vector width: +,-,*,/ and sqrt
      // are IEEE-exact lane-wise, and -ffp-contract=off keeps the FMA
      // units from fusing rounding steps away.
      " -O3 -march=native -fPIC -shared -fno-math-errno -ffp-contract=off"
      " -o " +
      quoted(tmp_path.string()) + " " + quoted(c_path.string()) + " -lm > " +
      quoted(log_path.string()) + " 2>&1";
  const int status = std::system(command.c_str());
  if (status != 0) {
    fs::remove(tmp_path, ec);
    throw KernelError("jit: compiler failed (status " +
                      std::to_string(status) + ") for kernel '" +
                      program.name() + "' via `" + compiler_command() +
                      "`: " + log_tail(log_path));
  }
  fs::rename(tmp_path, so_path, ec);
  if (ec) {
    throw KernelError("jit: cannot move compiled object into place: " +
                      ec.message());
  }

  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = dlerror();
    throw KernelError("jit: dlopen failed for " + so_path.string() + ": " +
                      (err != nullptr ? err : "unknown error"));
  }
  dlerror();  // clear stale state before dlsym
  void* sym = dlsym(handle, kJitEntryName);
  if (sym == nullptr) {
    const char* err = dlerror();
    const std::string detail = err != nullptr ? err : "symbol not found";
    dlclose(handle);
    throw KernelError("jit: dlsym(" + std::string(kJitEntryName) +
                      ") failed: " + detail);
  }
  return std::make_shared<const Module>(
      handle, reinterpret_cast<Module::EntryFn>(sym), so_path.string());
}

std::size_t reap_stale_artifacts() {
  std::size_t removed = 0;
  std::error_code ec;

  // Sibling directories of dead processes.
  for (const fs::directory_entry& entry :
       fs::directory_iterator(jit_root(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 2 || name[0] != 'p') continue;
    char* endp = nullptr;
    const long pid = std::strtol(name.c_str() + 1, &endp, 10);
    if (pid <= 0 || endp == nullptr || *endp != '\0') continue;
    if (pid == static_cast<long>(getpid())) continue;
    if (kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH) {
      std::error_code rm_ec;
      removed += fs::remove_all(entry.path(), rm_ec);
    }
  }
  if (ec) return removed;  // root does not exist yet: nothing to reap

  // Stray temp objects in our own directory (a crashed earlier incarnation
  // of this pid number, or an aborted compile of our own).
  std::error_code own_ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(process_dir(), own_ec)) {
    if (entry.path().extension() == ".tmp") {
      std::error_code rm_ec;
      if (fs::remove(entry.path(), rm_ec)) ++removed;
    }
  }
  return removed;
}

}  // namespace dfg::kernels::jit
