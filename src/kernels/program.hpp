// Kernel layer: programs and the program builder.
//
// A Program is one virtual OpenCL kernel: a buffer-parameter signature, a
// bytecode body, and the metadata the virtual compute layer's cost model
// needs (per-element flops, per-element global traffic, peak live scalar
// registers). Programs are produced either as *standalone* kernels — one
// per derived-field primitive, used by the roundtrip and staged strategies —
// or as a single *fused* kernel assembled by the KernelGenerator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/bytecode.hpp"

namespace dfg::kernels {

/// One __global buffer parameter of a kernel.
struct BufferParam {
  std::string name;
  /// True when the buffer packs one float4 per element (vector-valued
  /// intermediates such as a staged gradient result).
  bool is_vec = false;
};

struct OptimizerStats;

class Program {
 public:
  Program() = default;

  /// Validates a complete instruction sequence (its store included) and
  /// computes the cost metadata — the shared back half of
  /// ProgramBuilder::finish, also used by the bytecode optimizer to rebuild
  /// programs after rewriting. The code must be in SSA form (each register
  /// defined at most once) for the register-pressure scan to be exact.
  static Program assemble(std::string name, std::vector<Instr> code,
                          std::vector<BufferParam> params,
                          std::uint16_t num_regs, int out_components);

  const std::string& name() const { return name_; }
  const std::vector<Instr>& code() const { return code_; }
  const std::vector<BufferParam>& params() const { return params_; }
  std::uint16_t register_count() const { return num_regs_; }
  /// Peak number of simultaneously live *scalar* registers (a float4
  /// register counts as 4). Compared against DeviceSpec::register_budget.
  int max_live_scalar_registers() const { return max_live_scalars_; }
  /// Components of the output value per element: 1 (scalar) or 3 (vector,
  /// stored as a packed float4).
  int out_components() const { return out_components_; }
  /// Floats written to the output buffer per element (1 or 4).
  std::size_t out_stride() const { return out_components_ == 1 ? 1 : 4; }

  std::uint64_t flops_per_item() const { return flops_per_item_; }
  std::uint64_t global_bytes_per_item() const { return global_bytes_per_item_; }

  /// Content fingerprint of the executable semantics: an FNV-1a hash over
  /// the instruction sequence (opcodes, registers, immediate bits), the
  /// parameter shapes (count and is_vec flags — names excluded, buffers
  /// bind positionally) and the output shape. Two programs share a
  /// fingerprint exactly when a code generator would emit identical
  /// kernels for them, so it keys the jit module cache: structurally
  /// identical programs reuse one compiled object regardless of how their
  /// buffers are named. Computed once at assemble().
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  friend class ProgramBuilder;
  /// The optimizer's register coalescing renames registers in place while
  /// keeping the SSA-computed metadata (the liveness scan above is only
  /// exact on SSA code, so it runs before renaming).
  friend Program optimize_program(const Program& program,
                                  OptimizerStats* stats);

  std::string name_;
  std::vector<Instr> code_;
  std::vector<BufferParam> params_;
  std::uint16_t num_regs_ = 0;
  int max_live_scalars_ = 0;
  int out_components_ = 1;
  std::uint64_t flops_per_item_ = 0;
  std::uint64_t global_bytes_per_item_ = 0;
  std::uint64_t fingerprint_ = 0;
};

/// Incrementally assembles a Program. Registers are SSA-like: each emit_*
/// returns a fresh register id. finish() appends the store, validates the
/// body and computes the cost metadata (including a last-use liveness scan
/// for the register-pressure figure).
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  /// Declares a __global buffer parameter; returns its slot index.
  std::uint16_t add_param(const std::string& name, bool is_vec = false);

  std::uint16_t emit_load_global(std::uint16_t param_slot);
  std::uint16_t emit_load_global_vec(std::uint16_t param_slot);
  std::uint16_t emit_load_const(float value);
  std::uint16_t emit_binary(Op op, std::uint16_t a, std::uint16_t b);
  std::uint16_t emit_unary(Op op, std::uint16_t a);
  std::uint16_t emit_component(std::uint16_t a, int component);
  std::uint16_t emit_select(std::uint16_t cond, std::uint16_t then_value,
                            std::uint16_t else_value);
  /// Packs three scalar registers into one vector register (lanes s0..s2,
  /// s3 zeroed).
  std::uint16_t emit_pack(std::uint16_t a, std::uint16_t b, std::uint16_t c);
  /// args: field, dims, x, y, z parameter slots.
  std::uint16_t emit_grad3d(std::uint16_t field_slot, std::uint16_t dims_slot,
                            std::uint16_t x_slot, std::uint16_t y_slot,
                            std::uint16_t z_slot);

  std::size_t param_count() const { return params_.size(); }

  /// Seals the program, storing result_reg with the given component count.
  Program finish(std::uint16_t result_reg, int out_components);

 private:
  std::uint16_t fresh_reg();

  std::string name_;
  std::vector<Instr> code_;
  std::vector<BufferParam> params_;
  std::uint16_t next_reg_ = 0;
};

}  // namespace dfg::kernels
