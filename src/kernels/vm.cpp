#include "kernels/vm.hpp"

#include <cmath>
#include <cstring>
#include <string>

#include "support/error.hpp"

namespace dfg::kernels {

namespace {

/// Pre-validated gradient context for one grad3d instruction. The dims and
/// node-coordinate buffers are checked once per run() call rather than once
/// per element.
struct GradContext {
  const float* field = nullptr;
  std::size_t field_elements = 0;
  std::size_t nx = 0, ny = 0, nz = 0;
  const float* x = nullptr;
  const float* y = nullptr;
  const float* z = nullptr;
};

GradContext make_grad_context(const Instr& instr,
                              std::span<const BufferBinding> inputs,
                              const std::string& program_name) {
  const auto need = [&](std::uint16_t slot) -> const BufferBinding& {
    if (slot >= inputs.size()) {
      throw KernelError("program '" + program_name +
                        "' grad3d references missing buffer slot " +
                        std::to_string(slot));
    }
    return inputs[slot];
  };
  const BufferBinding& field = need(instr.args[0]);
  const BufferBinding& dims = need(instr.args[1]);
  const BufferBinding& x = need(instr.args[2]);
  const BufferBinding& y = need(instr.args[3]);
  const BufferBinding& z = need(instr.args[4]);
  if (dims.elements < 3) {
    throw KernelError("grad3d dims buffer must hold 3 values (nx, ny, nz)");
  }
  GradContext ctx;
  ctx.nx = static_cast<std::size_t>(dims.data[0]);
  ctx.ny = static_cast<std::size_t>(dims.data[1]);
  ctx.nz = static_cast<std::size_t>(dims.data[2]);
  if (ctx.nx == 0 || ctx.ny == 0 || ctx.nz == 0) {
    throw KernelError("grad3d dims must be positive");
  }
  const std::size_t cells = ctx.nx * ctx.ny * ctx.nz;
  if (field.elements < cells) {
    throw KernelError("grad3d field buffer holds " +
                      std::to_string(field.elements) + " values, needs " +
                      std::to_string(cells));
  }
  // Coordinate arrays are problem-sized (one cell-center coordinate per
  // cell, as the host pipeline provides them — see Table I's 24 B/cell).
  if (x.elements < cells || y.elements < cells || z.elements < cells) {
    throw KernelError(
        "grad3d coordinate buffers must hold one value per cell");
  }
  ctx.field = field.data;
  ctx.field_elements = field.elements;
  ctx.x = x.data;
  ctx.y = y.data;
  ctx.z = z.data;
  return ctx;
}

/// Shared prevalidation for both interpreters: argument-count and output
/// extent checks, scalar/vector load extent checks, and gradient contexts
/// built once per call.
std::vector<GradContext> prevalidate(const Program& program,
                                     std::span<const BufferBinding> inputs,
                                     std::size_t out_elements,
                                     std::size_t begin, std::size_t end) {
  if (inputs.size() != program.params().size()) {
    throw KernelError("program '" + program.name() + "' expects " +
                      std::to_string(program.params().size()) +
                      " buffers, got " + std::to_string(inputs.size()));
  }
  const std::size_t stride = program.out_stride();
  if (end > begin && out_elements < end * stride) {
    throw KernelError("program '" + program.name() +
                      "' output buffer too small: " +
                      std::to_string(out_elements) + " < " +
                      std::to_string(end * stride));
  }

  std::vector<GradContext> grads(program.code().size());
  for (std::size_t pc = 0; pc < program.code().size(); ++pc) {
    const Instr& instr = program.code()[pc];
    if (instr.op == Op::grad3d) {
      grads[pc] = make_grad_context(instr, inputs, program.name());
    } else if (instr.op == Op::load_global) {
      const BufferBinding& b = inputs[instr.args[0]];
      if (end > begin && b.elements < end) {
        throw KernelError("program '" + program.name() + "' buffer '" +
                          program.params()[instr.args[0]].name +
                          "' too small for NDRange");
      }
    } else if (instr.op == Op::load_global_vec) {
      const BufferBinding& b = inputs[instr.args[0]];
      if (end > begin && b.elements < end * 4) {
        throw KernelError("program '" + program.name() + "' vec buffer '" +
                          program.params()[instr.args[0]].name +
                          "' too small for NDRange");
      }
    }
  }
  return grads;
}

/// One-axis derivative of a cell-centered field: central difference on the
/// interior, one-sided at the boundary — the discretisation used by
/// rectilinear-gradient filters in VisIt-style pipelines. The coordinate
/// array holds one cell-center coordinate per cell and is indexed with the
/// same stencil as the field.
inline float axis_derivative(const float* field, const float* coords,
                             std::size_t idx, std::size_t n,
                             std::size_t stride, std::size_t base) {
  if (n == 1) return 0.0f;
  std::size_t lo_i, hi_i;
  if (idx == 0) {
    lo_i = 0;
    hi_i = 1;
  } else if (idx == n - 1) {
    lo_i = n - 2;
    hi_i = n - 1;
  } else {
    lo_i = idx - 1;
    hi_i = idx + 1;
  }
  const float df = field[base + hi_i * stride] - field[base + lo_i * stride];
  const float dc =
      coords[base + hi_i * stride] - coords[base + lo_i * stride];
  return dc == 0.0f ? 0.0f : df / dc;
}

inline Vec4 eval_grad(const GradContext& ctx, std::size_t gid) {
  const std::size_t i = gid % ctx.nx;
  const std::size_t j = (gid / ctx.nx) % ctx.ny;
  const std::size_t k = gid / (ctx.nx * ctx.ny);
  const std::size_t plane = ctx.nx * ctx.ny;

  Vec4 g;
  // d/dx: neighbours along i, base = j*nx + k*plane.
  g[0] = axis_derivative(ctx.field, ctx.x, i, ctx.nx, 1,
                         j * ctx.nx + k * plane);
  // d/dy: neighbours along j, base = i + k*plane.
  g[1] = axis_derivative(ctx.field, ctx.y, j, ctx.ny, ctx.nx, i + k * plane);
  // d/dz: neighbours along k, base = i + j*nx.
  g[2] = axis_derivative(ctx.field, ctx.z, k, ctx.nz, plane, i + j * ctx.nx);
  g[3] = 0.0f;
  return g;
}

template <typename F>
inline Vec4 lanewise(const Vec4& a, const Vec4& b, F f) {
  Vec4 r;
  for (int i = 0; i < 4; ++i) r[i] = f(a[i], b[i]);
  return r;
}

template <typename F>
inline Vec4 lanewise1(const Vec4& a, F f) {
  Vec4 r;
  for (int i = 0; i < 4; ++i) r[i] = f(a[i]);
  return r;
}

}  // namespace

void validate_launch(const Program& program,
                     std::span<const BufferBinding> inputs,
                     std::size_t out_elements, std::size_t begin,
                     std::size_t end) {
  (void)prevalidate(program, inputs, out_elements, begin, end);
}

/// Exact backward lane-liveness, one 4-bit mask per instruction: bit l set
/// when some later consumer can observe lane l of the value this
/// instruction defines. Unlike the optimizer's SSA-only analysis this
/// clears a register's mask at every definition, so it is exact for
/// coalesced (register-reusing) straight-line code too. The tiled
/// interpreter skips dead lanes — and whole dead instructions — which is
/// safe precisely because nothing can read what was skipped.
std::vector<std::uint8_t> live_lane_masks(const Program& program) {
  const std::vector<Instr>& code = program.code();
  std::vector<std::uint8_t> live(program.register_count(), 0);
  std::vector<std::uint8_t> masks(code.size(), 0);
  for (std::size_t idx = code.size(); idx-- > 0;) {
    const Instr& in = code[idx];
    if (in.op == Op::store) {
      live[in.args[0]] |= 0x1;
      masks[idx] = 0xF;  // stores always execute
      continue;
    }
    if (in.op == Op::store_vec) {
      live[in.args[0]] |= 0xF;
      masks[idx] = 0xF;
      continue;
    }
    const std::uint8_t m = live[in.dst];
    masks[idx] = m;
    live[in.dst] = 0;
    if (m == 0) continue;  // dead definition: operands stay unobserved
    switch (in.op) {
      case Op::component:
        if (m & 0x1) {
          live[in.args[0]] |= static_cast<std::uint8_t>(1u << in.args[1]);
        }
        break;
      case Op::cmp_gt:
      case Op::cmp_lt:
      case Op::cmp_ge:
      case Op::cmp_le:
      case Op::cmp_eq:
      case Op::cmp_ne:
        if (m & 0x1) {
          live[in.args[0]] |= 0x1;
          live[in.args[1]] |= 0x1;
        }
        break;
      case Op::select:
        live[in.args[0]] |= 0x1;
        live[in.args[1]] |= m;
        live[in.args[2]] |= m;
        break;
      case Op::pack:
        // Lane l of the packed value comes from lane 0 of operand l; lane 3
        // is a constant zero and observes nothing.
        for (int l = 0; l < 3; ++l) {
          if (m & (1u << l)) live[in.args[static_cast<std::size_t>(l)]] |= 0x1;
        }
        break;
      default:
        if (op_is_binary(in.op)) {
          live[in.args[0]] |= m;
          live[in.args[1]] |= m;
        } else if (op_is_unary(in.op)) {
          live[in.args[0]] |= m;
        }
        // Loads and grad3d read buffers, not registers.
        break;
    }
  }
  return masks;
}

void run(const Program& program, std::span<const BufferBinding> inputs,
         float* out, std::size_t out_elements, std::size_t begin,
         std::size_t end) {
  const std::vector<GradContext> grads =
      prevalidate(program, inputs, out_elements, begin, end);
  const std::vector<std::uint8_t> masks = live_lane_masks(program);

  // Per-tile register file: column arrays in structure-of-arrays layout,
  // kTileSize floats per lane, the four lanes of a register contiguous.
  std::vector<float> ws(static_cast<std::size_t>(program.register_count()) *
                        4 * kTileSize);
  const auto col = [&ws](std::uint16_t reg, int lane) {
    return ws.data() +
           (static_cast<std::size_t>(reg) * 4 + static_cast<std::size_t>(lane)) *
               kTileSize;
  };

  for (std::size_t t0 = begin; t0 < end; t0 += kTileSize) {
    const std::size_t count = std::min(kTileSize, end - t0);

    // Zero the *live* lanes among 1..3 of a freshly defined
    // scalar-producing register, matching the element interpreter's
    // `regs[dst] = Vec4{}` reset on every lane a consumer can observe.
    const auto zero_high = [&](std::uint16_t reg, std::uint8_t mask) {
      for (int lane = 1; lane < 4; ++lane) {
        if (mask & (1u << lane)) {
          std::memset(col(reg, lane), 0, count * sizeof(float));
        }
      }
    };
    // Lane-wise binary/unary bodies over the live lanes only. Element-wise
    // read-before-write keeps them correct when register coalescing makes
    // dst alias an operand.
    const auto binary = [&](const Instr& in, std::uint8_t mask, auto f) {
      for (int lane = 0; lane < 4; ++lane) {
        if (!(mask & (1u << lane))) continue;
        const float* a = col(in.args[0], lane);
        const float* b = col(in.args[1], lane);
        float* d = col(in.dst, lane);
        for (std::size_t e = 0; e < count; ++e) d[e] = f(a[e], b[e]);
      }
    };
    const auto unary = [&](const Instr& in, std::uint8_t mask, auto f) {
      for (int lane = 0; lane < 4; ++lane) {
        if (!(mask & (1u << lane))) continue;
        const float* a = col(in.args[0], lane);
        float* d = col(in.dst, lane);
        for (std::size_t e = 0; e < count; ++e) d[e] = f(a[e]);
      }
    };
    const auto compare = [&](const Instr& in, std::uint8_t mask, auto f) {
      if (mask & 0x1) {
        const float* a = col(in.args[0], 0);
        const float* b = col(in.args[1], 0);
        float* d = col(in.dst, 0);
        for (std::size_t e = 0; e < count; ++e) {
          d[e] = f(a[e], b[e]) ? 1.0f : 0.0f;
        }
      }
      zero_high(in.dst, mask);
    };

    for (std::size_t pc = 0; pc < program.code().size(); ++pc) {
      const Instr& in = program.code()[pc];
      const std::uint8_t mask = masks[pc];
      // A definition nothing can observe needs no work at all (stores and
      // the out-buffer writes always carry mask 0xF).
      if (mask == 0 && op_defines_register(in.op)) continue;
      switch (in.op) {
        case Op::load_global: {
          if (mask & 0x1) {
            std::memcpy(col(in.dst, 0), inputs[in.args[0]].data + t0,
                        count * sizeof(float));
          }
          zero_high(in.dst, mask);
          break;
        }
        case Op::load_global_vec: {
          const float* p = inputs[in.args[0]].data + t0 * 4;
          for (int lane = 0; lane < 4; ++lane) {
            if (!(mask & (1u << lane))) continue;
            float* d = col(in.dst, lane);
            for (std::size_t e = 0; e < count; ++e) {
              d[e] = p[e * 4 + static_cast<std::size_t>(lane)];
            }
          }
          break;
        }
        case Op::load_const: {
          if (mask & 0x1) {
            float* d = col(in.dst, 0);
            for (std::size_t e = 0; e < count; ++e) d[e] = in.imm;
          }
          zero_high(in.dst, mask);
          break;
        }
        case Op::add:
          binary(in, mask, [](float a, float b) { return a + b; });
          break;
        case Op::sub:
          binary(in, mask, [](float a, float b) { return a - b; });
          break;
        case Op::mul:
          binary(in, mask, [](float a, float b) { return a * b; });
          break;
        case Op::div:
          binary(in, mask, [](float a, float b) { return a / b; });
          break;
        case Op::min:
          binary(in, mask, [](float a, float b) { return std::fmin(a, b); });
          break;
        case Op::max:
          binary(in, mask, [](float a, float b) { return std::fmax(a, b); });
          break;
        case Op::pow:
          binary(in, mask, [](float a, float b) { return std::pow(a, b); });
          break;
        case Op::sqrt:
          unary(in, mask, [](float a) { return std::sqrt(a); });
          break;
        case Op::neg:
          unary(in, mask, [](float a) { return -a; });
          break;
        case Op::abs:
          unary(in, mask, [](float a) { return std::fabs(a); });
          break;
        case Op::sin:
          unary(in, mask, [](float a) { return std::sin(a); });
          break;
        case Op::cos:
          unary(in, mask, [](float a) { return std::cos(a); });
          break;
        case Op::tan:
          unary(in, mask, [](float a) { return std::tan(a); });
          break;
        case Op::acos:
          unary(in, mask, [](float a) { return std::acos(a); });
          break;
        case Op::exp:
          unary(in, mask, [](float a) { return std::exp(a); });
          break;
        case Op::log:
          unary(in, mask, [](float a) { return std::log(a); });
          break;
        case Op::tanh:
          unary(in, mask, [](float a) { return std::tanh(a); });
          break;
        case Op::floor:
          unary(in, mask, [](float a) { return std::floor(a); });
          break;
        case Op::ceil:
          unary(in, mask, [](float a) { return std::ceil(a); });
          break;
        case Op::component: {
          if (mask & 0x1) {
            const float* src = col(in.args[0], static_cast<int>(in.args[1]));
            float* d = col(in.dst, 0);
            for (std::size_t e = 0; e < count; ++e) d[e] = src[e];
          }
          zero_high(in.dst, mask);
          break;
        }
        case Op::cmp_gt:
          compare(in, mask, [](float a, float b) { return a > b; });
          break;
        case Op::cmp_lt:
          compare(in, mask, [](float a, float b) { return a < b; });
          break;
        case Op::cmp_ge:
          compare(in, mask, [](float a, float b) { return a >= b; });
          break;
        case Op::cmp_le:
          compare(in, mask, [](float a, float b) { return a <= b; });
          break;
        case Op::cmp_eq:
          compare(in, mask, [](float a, float b) { return a == b; });
          break;
        case Op::cmp_ne:
          compare(in, mask, [](float a, float b) { return a != b; });
          break;
        case Op::select: {
          // Lane 0 last: when coalescing makes dst alias the condition
          // register, the condition column must survive the lane-1..3
          // passes, and the lane-0 pass itself reads before it writes.
          const float* c0 = col(in.args[0], 0);
          for (int lane = 3; lane >= 0; --lane) {
            if (!(mask & (1u << lane))) continue;
            const float* tv = col(in.args[1], lane);
            const float* ev = col(in.args[2], lane);
            float* d = col(in.dst, lane);
            for (std::size_t e = 0; e < count; ++e) {
              d[e] = c0[e] != 0.0f ? tv[e] : ev[e];
            }
          }
          break;
        }
        case Op::pack: {
          // Descending lanes (like select): lane L of dst reads lane 0 of
          // operand L, so writing high lanes first keeps the lane-0 source
          // columns intact when coalescing makes dst alias an operand; the
          // lane-0 pass itself reads before it writes.
          if (mask & 0x8) {
            std::memset(col(in.dst, 3), 0, count * sizeof(float));
          }
          for (int lane = 2; lane >= 0; --lane) {
            if (!(mask & (1u << lane))) continue;
            const float* a = col(in.args[static_cast<std::size_t>(lane)], 0);
            float* d = col(in.dst, lane);
            for (std::size_t e = 0; e < count; ++e) d[e] = a[e];
          }
          break;
        }
        case Op::grad3d: {
          // Row-wise stencil: within one x-row (fixed j, k) the y- and
          // z-neighbour offsets are constant, so both lanes reduce to
          // streaming subtract/divide over contiguous spans; the x lane is
          // contiguous too once its (at most two) boundary cells are
          // peeled. Arithmetic is operand-for-operand the one
          // axis_derivative performs, so results stay bit-identical to the
          // element interpreter.
          const GradContext& g = grads[pc];
          const std::size_t plane = g.nx * g.ny;
          std::size_t i = t0 % g.nx;
          std::size_t j = (t0 / g.nx) % g.ny;
          std::size_t k = t0 / plane;
          float* d0 = col(in.dst, 0);
          float* d1 = col(in.dst, 1);
          float* d2 = col(in.dst, 2);
          float* d3 = col(in.dst, 3);
          std::size_t e = 0;
          while (e < count) {
            const std::size_t row_len = std::min(count - e, g.nx - i);
            const std::size_t row_base = j * g.nx + k * plane;
            // d/dx: neighbours along i within this row.
            if (!(mask & 0x1)) {
            } else if (g.nx == 1) {
              for (std::size_t t = 0; t < row_len; ++t) d0[e + t] = 0.0f;
            } else {
              const float* f = g.field + row_base;
              const float* cx = g.x + row_base;
              std::size_t t = 0;
              if (i == 0) {
                d0[e] = axis_derivative(g.field, g.x, 0, g.nx, 1, row_base);
                t = 1;
              }
              const std::size_t t_end =
                  (i + row_len == g.nx) ? row_len - 1 : row_len;
              for (; t < t_end; ++t) {
                const std::size_t ii = i + t;
                const float df = f[ii + 1] - f[ii - 1];
                const float dc = cx[ii + 1] - cx[ii - 1];
                d0[e + t] = dc == 0.0f ? 0.0f : df / dc;
              }
              if (t_end < row_len) {
                d0[e + row_len - 1] = axis_derivative(g.field, g.x, g.nx - 1,
                                                      g.nx, 1, row_base);
              }
            }
            // d/dy: the whole row shares one (lo_j, hi_j) pair.
            if (!(mask & 0x2)) {
            } else if (g.ny == 1) {
              for (std::size_t t = 0; t < row_len; ++t) d1[e + t] = 0.0f;
            } else {
              const std::size_t lo_j = j - (j > 0 ? 1 : 0);
              const std::size_t hi_j = j + (j < g.ny - 1 ? 1 : 0);
              const float* fhi = g.field + k * plane + hi_j * g.nx + i;
              const float* flo = g.field + k * plane + lo_j * g.nx + i;
              const float* chi = g.y + k * plane + hi_j * g.nx + i;
              const float* clo = g.y + k * plane + lo_j * g.nx + i;
              for (std::size_t t = 0; t < row_len; ++t) {
                const float df = fhi[t] - flo[t];
                const float dc = chi[t] - clo[t];
                d1[e + t] = dc == 0.0f ? 0.0f : df / dc;
              }
            }
            // d/dz: likewise one (lo_k, hi_k) pair per row.
            if (!(mask & 0x4)) {
            } else if (g.nz == 1) {
              for (std::size_t t = 0; t < row_len; ++t) d2[e + t] = 0.0f;
            } else {
              const std::size_t lo_k = k - (k > 0 ? 1 : 0);
              const std::size_t hi_k = k + (k < g.nz - 1 ? 1 : 0);
              const float* fhi = g.field + j * g.nx + hi_k * plane + i;
              const float* flo = g.field + j * g.nx + lo_k * plane + i;
              const float* chi = g.z + j * g.nx + hi_k * plane + i;
              const float* clo = g.z + j * g.nx + lo_k * plane + i;
              for (std::size_t t = 0; t < row_len; ++t) {
                const float df = fhi[t] - flo[t];
                const float dc = chi[t] - clo[t];
                d2[e + t] = dc == 0.0f ? 0.0f : df / dc;
              }
            }
            if (mask & 0x8) {
              for (std::size_t t = 0; t < row_len; ++t) d3[e + t] = 0.0f;
            }
            e += row_len;
            i = 0;
            if (++j == g.ny) {
              j = 0;
              ++k;
            }
          }
          break;
        }
        case Op::store: {
          std::memcpy(out + t0, col(in.args[0], 0), count * sizeof(float));
          break;
        }
        case Op::store_vec: {
          float* p = out + t0 * 4;
          for (int lane = 0; lane < 4; ++lane) {
            const float* s = col(in.args[0], lane);
            for (std::size_t e = 0; e < count; ++e) {
              p[e * 4 + static_cast<std::size_t>(lane)] = s[e];
            }
          }
          break;
        }
      }
    }
  }
}

void run_scalar(const Program& program, std::span<const BufferBinding> inputs,
                float* out, std::size_t out_elements, std::size_t begin,
                std::size_t end) {
  const std::vector<GradContext> grads =
      prevalidate(program, inputs, out_elements, begin, end);

  std::vector<Vec4> regs(program.register_count());
  for (std::size_t gid = begin; gid < end; ++gid) {
    for (std::size_t pc = 0; pc < program.code().size(); ++pc) {
      const Instr& in = program.code()[pc];
      switch (in.op) {
        case Op::load_global:
          regs[in.dst] = Vec4{};
          regs[in.dst][0] = inputs[in.args[0]].data[gid];
          break;
        case Op::load_global_vec: {
          const float* p = inputs[in.args[0]].data + gid * 4;
          regs[in.dst] = Vec4{{p[0], p[1], p[2], p[3]}};
          break;
        }
        case Op::load_const:
          regs[in.dst] = Vec4{};
          regs[in.dst][0] = in.imm;
          break;
        case Op::add:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return a + b; });
          break;
        case Op::sub:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return a - b; });
          break;
        case Op::mul:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return a * b; });
          break;
        case Op::div:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return a / b; });
          break;
        case Op::min:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return std::fmin(a, b); });
          break;
        case Op::max:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return std::fmax(a, b); });
          break;
        case Op::pow:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return std::pow(a, b); });
          break;
        case Op::sqrt:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::sqrt(a); });
          break;
        case Op::neg:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return -a; });
          break;
        case Op::abs:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::fabs(a); });
          break;
        case Op::sin:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::sin(a); });
          break;
        case Op::cos:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::cos(a); });
          break;
        case Op::tan:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::tan(a); });
          break;
        case Op::acos:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::acos(a); });
          break;
        case Op::exp:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::exp(a); });
          break;
        case Op::log:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::log(a); });
          break;
        case Op::tanh:
          regs[in.dst] = lanewise1(regs[in.args[0]],
                                   [](float a) { return std::tanh(a); });
          break;
        case Op::floor:
          regs[in.dst] = lanewise1(regs[in.args[0]],
                                   [](float a) { return std::floor(a); });
          break;
        case Op::ceil:
          regs[in.dst] = lanewise1(regs[in.args[0]],
                                   [](float a) { return std::ceil(a); });
          break;
        case Op::component: {
          const float value = regs[in.args[0]][in.args[1]];
          regs[in.dst] = Vec4{};
          regs[in.dst][0] = value;
          break;
        }
        case Op::cmp_gt: {
          const float value =
              regs[in.args[0]][0] > regs[in.args[1]][0] ? 1.0f : 0.0f;
          regs[in.dst] = Vec4{};
          regs[in.dst][0] = value;
          break;
        }
        case Op::cmp_lt: {
          const float value =
              regs[in.args[0]][0] < regs[in.args[1]][0] ? 1.0f : 0.0f;
          regs[in.dst] = Vec4{};
          regs[in.dst][0] = value;
          break;
        }
        case Op::cmp_ge: {
          const float value =
              regs[in.args[0]][0] >= regs[in.args[1]][0] ? 1.0f : 0.0f;
          regs[in.dst] = Vec4{};
          regs[in.dst][0] = value;
          break;
        }
        case Op::cmp_le: {
          const float value =
              regs[in.args[0]][0] <= regs[in.args[1]][0] ? 1.0f : 0.0f;
          regs[in.dst] = Vec4{};
          regs[in.dst][0] = value;
          break;
        }
        case Op::cmp_eq: {
          const float value =
              regs[in.args[0]][0] == regs[in.args[1]][0] ? 1.0f : 0.0f;
          regs[in.dst] = Vec4{};
          regs[in.dst][0] = value;
          break;
        }
        case Op::cmp_ne: {
          const float value =
              regs[in.args[0]][0] != regs[in.args[1]][0] ? 1.0f : 0.0f;
          regs[in.dst] = Vec4{};
          regs[in.dst][0] = value;
          break;
        }
        case Op::select: {
          const Vec4 picked = regs[in.args[0]][0] != 0.0f ? regs[in.args[1]]
                                                          : regs[in.args[2]];
          regs[in.dst] = picked;
          break;
        }
        case Op::pack: {
          const Vec4 packed{{regs[in.args[0]][0], regs[in.args[1]][0],
                             regs[in.args[2]][0], 0.0f}};
          regs[in.dst] = packed;
          break;
        }
        case Op::grad3d:
          regs[in.dst] = eval_grad(grads[pc], gid);
          break;
        case Op::store:
          out[gid] = regs[in.args[0]][0];
          break;
        case Op::store_vec: {
          float* p = out + gid * 4;
          const Vec4& v = regs[in.args[0]];
          p[0] = v[0];
          p[1] = v[1];
          p[2] = v[2];
          p[3] = v[3];
          break;
        }
      }
    }
  }
}

void run_all(const Program& program, std::span<const BufferBinding> inputs,
             std::span<float> out, std::size_t ndrange) {
  run(program, inputs, out.data(), out.size(), 0, ndrange);
}

}  // namespace dfg::kernels
