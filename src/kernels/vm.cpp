#include "kernels/vm.hpp"

#include <cmath>
#include <string>

#include "support/error.hpp"

namespace dfg::kernels {

namespace {

/// Pre-validated gradient context for one grad3d instruction. The dims and
/// node-coordinate buffers are checked once per run() call rather than once
/// per element.
struct GradContext {
  const float* field = nullptr;
  std::size_t field_elements = 0;
  std::size_t nx = 0, ny = 0, nz = 0;
  const float* x = nullptr;
  const float* y = nullptr;
  const float* z = nullptr;
};

GradContext make_grad_context(const Instr& instr,
                              std::span<const BufferBinding> inputs,
                              const std::string& program_name) {
  const auto need = [&](std::uint16_t slot) -> const BufferBinding& {
    if (slot >= inputs.size()) {
      throw KernelError("program '" + program_name +
                        "' grad3d references missing buffer slot " +
                        std::to_string(slot));
    }
    return inputs[slot];
  };
  const BufferBinding& field = need(instr.args[0]);
  const BufferBinding& dims = need(instr.args[1]);
  const BufferBinding& x = need(instr.args[2]);
  const BufferBinding& y = need(instr.args[3]);
  const BufferBinding& z = need(instr.args[4]);
  if (dims.elements < 3) {
    throw KernelError("grad3d dims buffer must hold 3 values (nx, ny, nz)");
  }
  GradContext ctx;
  ctx.nx = static_cast<std::size_t>(dims.data[0]);
  ctx.ny = static_cast<std::size_t>(dims.data[1]);
  ctx.nz = static_cast<std::size_t>(dims.data[2]);
  if (ctx.nx == 0 || ctx.ny == 0 || ctx.nz == 0) {
    throw KernelError("grad3d dims must be positive");
  }
  const std::size_t cells = ctx.nx * ctx.ny * ctx.nz;
  if (field.elements < cells) {
    throw KernelError("grad3d field buffer holds " +
                      std::to_string(field.elements) + " values, needs " +
                      std::to_string(cells));
  }
  // Coordinate arrays are problem-sized (one cell-center coordinate per
  // cell, as the host pipeline provides them — see Table I's 24 B/cell).
  if (x.elements < cells || y.elements < cells || z.elements < cells) {
    throw KernelError(
        "grad3d coordinate buffers must hold one value per cell");
  }
  ctx.field = field.data;
  ctx.field_elements = field.elements;
  ctx.x = x.data;
  ctx.y = y.data;
  ctx.z = z.data;
  return ctx;
}

/// One-axis derivative of a cell-centered field: central difference on the
/// interior, one-sided at the boundary — the discretisation used by
/// rectilinear-gradient filters in VisIt-style pipelines. The coordinate
/// array holds one cell-center coordinate per cell and is indexed with the
/// same stencil as the field.
inline float axis_derivative(const float* field, const float* coords,
                             std::size_t idx, std::size_t n,
                             std::size_t stride, std::size_t base) {
  if (n == 1) return 0.0f;
  std::size_t lo_i, hi_i;
  if (idx == 0) {
    lo_i = 0;
    hi_i = 1;
  } else if (idx == n - 1) {
    lo_i = n - 2;
    hi_i = n - 1;
  } else {
    lo_i = idx - 1;
    hi_i = idx + 1;
  }
  const float df = field[base + hi_i * stride] - field[base + lo_i * stride];
  const float dc =
      coords[base + hi_i * stride] - coords[base + lo_i * stride];
  return dc == 0.0f ? 0.0f : df / dc;
}

inline Vec4 eval_grad(const GradContext& ctx, std::size_t gid) {
  const std::size_t i = gid % ctx.nx;
  const std::size_t j = (gid / ctx.nx) % ctx.ny;
  const std::size_t k = gid / (ctx.nx * ctx.ny);
  const std::size_t plane = ctx.nx * ctx.ny;

  Vec4 g;
  // d/dx: neighbours along i, base = j*nx + k*plane.
  g[0] = axis_derivative(ctx.field, ctx.x, i, ctx.nx, 1,
                         j * ctx.nx + k * plane);
  // d/dy: neighbours along j, base = i + k*plane.
  g[1] = axis_derivative(ctx.field, ctx.y, j, ctx.ny, ctx.nx, i + k * plane);
  // d/dz: neighbours along k, base = i + j*nx.
  g[2] = axis_derivative(ctx.field, ctx.z, k, ctx.nz, plane, i + j * ctx.nx);
  g[3] = 0.0f;
  return g;
}

template <typename F>
inline Vec4 lanewise(const Vec4& a, const Vec4& b, F f) {
  Vec4 r;
  for (int i = 0; i < 4; ++i) r[i] = f(a[i], b[i]);
  return r;
}

template <typename F>
inline Vec4 lanewise1(const Vec4& a, F f) {
  Vec4 r;
  for (int i = 0; i < 4; ++i) r[i] = f(a[i]);
  return r;
}

}  // namespace

void run(const Program& program, std::span<const BufferBinding> inputs,
         float* out, std::size_t out_elements, std::size_t begin,
         std::size_t end) {
  if (inputs.size() != program.params().size()) {
    throw KernelError("program '" + program.name() + "' expects " +
                      std::to_string(program.params().size()) +
                      " buffers, got " + std::to_string(inputs.size()));
  }
  const std::size_t stride = program.out_stride();
  if (end > begin && out_elements < end * stride) {
    throw KernelError("program '" + program.name() +
                      "' output buffer too small: " +
                      std::to_string(out_elements) + " < " +
                      std::to_string(end * stride));
  }

  // Validate scalar loads against buffer extents and pre-build gradient
  // contexts once per chunk.
  std::vector<GradContext> grads(program.code().size());
  for (std::size_t pc = 0; pc < program.code().size(); ++pc) {
    const Instr& instr = program.code()[pc];
    if (instr.op == Op::grad3d) {
      grads[pc] = make_grad_context(instr, inputs, program.name());
    } else if (instr.op == Op::load_global) {
      const BufferBinding& b = inputs[instr.args[0]];
      if (end > begin && b.elements < end) {
        throw KernelError("program '" + program.name() + "' buffer '" +
                          program.params()[instr.args[0]].name +
                          "' too small for NDRange");
      }
    } else if (instr.op == Op::load_global_vec) {
      const BufferBinding& b = inputs[instr.args[0]];
      if (end > begin && b.elements < end * 4) {
        throw KernelError("program '" + program.name() + "' vec buffer '" +
                          program.params()[instr.args[0]].name +
                          "' too small for NDRange");
      }
    }
  }

  std::vector<Vec4> regs(program.register_count());
  for (std::size_t gid = begin; gid < end; ++gid) {
    for (std::size_t pc = 0; pc < program.code().size(); ++pc) {
      const Instr& in = program.code()[pc];
      switch (in.op) {
        case Op::load_global:
          regs[in.dst] = Vec4{};
          regs[in.dst][0] = inputs[in.args[0]].data[gid];
          break;
        case Op::load_global_vec: {
          const float* p = inputs[in.args[0]].data + gid * 4;
          regs[in.dst] = Vec4{{p[0], p[1], p[2], p[3]}};
          break;
        }
        case Op::load_const:
          regs[in.dst] = Vec4{};
          regs[in.dst][0] = in.imm;
          break;
        case Op::add:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return a + b; });
          break;
        case Op::sub:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return a - b; });
          break;
        case Op::mul:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return a * b; });
          break;
        case Op::div:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return a / b; });
          break;
        case Op::min:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return std::fmin(a, b); });
          break;
        case Op::max:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return std::fmax(a, b); });
          break;
        case Op::pow:
          regs[in.dst] = lanewise(regs[in.args[0]], regs[in.args[1]],
                                  [](float a, float b) { return std::pow(a, b); });
          break;
        case Op::sqrt:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::sqrt(a); });
          break;
        case Op::neg:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return -a; });
          break;
        case Op::abs:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::fabs(a); });
          break;
        case Op::sin:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::sin(a); });
          break;
        case Op::cos:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::cos(a); });
          break;
        case Op::tan:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::tan(a); });
          break;
        case Op::exp:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::exp(a); });
          break;
        case Op::log:
          regs[in.dst] =
              lanewise1(regs[in.args[0]], [](float a) { return std::log(a); });
          break;
        case Op::tanh:
          regs[in.dst] = lanewise1(regs[in.args[0]],
                                   [](float a) { return std::tanh(a); });
          break;
        case Op::floor:
          regs[in.dst] = lanewise1(regs[in.args[0]],
                                   [](float a) { return std::floor(a); });
          break;
        case Op::ceil:
          regs[in.dst] = lanewise1(regs[in.args[0]],
                                   [](float a) { return std::ceil(a); });
          break;
        case Op::component:
          regs[in.dst] = Vec4{};
          regs[in.dst][0] = regs[in.args[0]][in.args[1]];
          break;
        case Op::cmp_gt:
          regs[in.dst] = Vec4{};
          regs[in.dst][0] =
              regs[in.args[0]][0] > regs[in.args[1]][0] ? 1.0f : 0.0f;
          break;
        case Op::cmp_lt:
          regs[in.dst] = Vec4{};
          regs[in.dst][0] =
              regs[in.args[0]][0] < regs[in.args[1]][0] ? 1.0f : 0.0f;
          break;
        case Op::cmp_ge:
          regs[in.dst] = Vec4{};
          regs[in.dst][0] =
              regs[in.args[0]][0] >= regs[in.args[1]][0] ? 1.0f : 0.0f;
          break;
        case Op::cmp_le:
          regs[in.dst] = Vec4{};
          regs[in.dst][0] =
              regs[in.args[0]][0] <= regs[in.args[1]][0] ? 1.0f : 0.0f;
          break;
        case Op::cmp_eq:
          regs[in.dst] = Vec4{};
          regs[in.dst][0] =
              regs[in.args[0]][0] == regs[in.args[1]][0] ? 1.0f : 0.0f;
          break;
        case Op::cmp_ne:
          regs[in.dst] = Vec4{};
          regs[in.dst][0] =
              regs[in.args[0]][0] != regs[in.args[1]][0] ? 1.0f : 0.0f;
          break;
        case Op::select:
          regs[in.dst] = regs[in.args[0]][0] != 0.0f ? regs[in.args[1]]
                                                     : regs[in.args[2]];
          break;
        case Op::grad3d:
          regs[in.dst] = eval_grad(grads[pc], gid);
          break;
        case Op::store:
          out[gid] = regs[in.args[0]][0];
          break;
        case Op::store_vec: {
          float* p = out + gid * 4;
          const Vec4& v = regs[in.args[0]];
          p[0] = v[0];
          p[1] = v[1];
          p[2] = v[2];
          p[3] = v[3];
          break;
        }
      }
    }
  }
}

void run_all(const Program& program, std::span<const BufferBinding> inputs,
             std::span<float> out, std::size_t ndrange) {
  run(program, inputs, out.data(), out.size(), 0, ndrange);
}

}  // namespace dfg::kernels
