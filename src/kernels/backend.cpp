#include "kernels/backend.hpp"

#include <cstdio>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "kernels/jit.hpp"
#include "kernels/program_cache.hpp"
#include "obs/metrics.hpp"
#include "support/env.hpp"

namespace dfg::kernels {

namespace {

class VmKernel final : public CompiledKernel {
 public:
  BackendKind kind() const override { return BackendKind::vm; }
  void run(const Program& program, std::span<const BufferBinding> inputs,
           float* out, std::size_t out_elements, std::size_t begin,
           std::size_t end) const override {
    kernels::run(program, inputs, out, out_elements, begin, end);
  }
};

class ScalarKernel final : public CompiledKernel {
 public:
  BackendKind kind() const override { return BackendKind::scalar; }
  void run(const Program& program, std::span<const BufferBinding> inputs,
           float* out, std::size_t out_elements, std::size_t begin,
           std::size_t end) const override {
    kernels::run_scalar(program, inputs, out, out_elements, begin, end);
  }
};

class JitKernel final : public CompiledKernel {
 public:
  explicit JitKernel(std::shared_ptr<const jit::Module> module)
      : module_(std::move(module)) {}
  BackendKind kind() const override { return BackendKind::jit; }
  void run(const Program& program, std::span<const BufferBinding> inputs,
           float* out, std::size_t out_elements, std::size_t begin,
           std::size_t end) const override {
    module_->execute(program, inputs, out, out_elements, begin, end);
  }

 private:
  std::shared_ptr<const jit::Module> module_;
};

class VmBackend final : public ExecutionBackend {
 public:
  BackendKind kind() const override { return BackendKind::vm; }
  std::shared_ptr<const CompiledKernel> prepare(const Program&) override {
    static const std::shared_ptr<const CompiledKernel> kernel =
        std::make_shared<const VmKernel>();
    return kernel;
  }
};

class ScalarBackend final : public ExecutionBackend {
 public:
  BackendKind kind() const override { return BackendKind::scalar; }
  std::shared_ptr<const CompiledKernel> prepare(const Program&) override {
    static const std::shared_ptr<const CompiledKernel> kernel =
        std::make_shared<const ScalarKernel>();
    return kernel;
  }
};

/// The degradation event: counted every time a launch that wanted native
/// code runs interpreted instead, warned to stderr once per program
/// fingerprint (the compile failure itself — with the toolchain's output —
/// was already reported by the module cache when it was negative-cached).
void note_jit_fallback(const Program& program) {
  obs::MetricsRegistry& reg = obs::metrics();
  reg.add(reg.counter("dfgen_jit_fallbacks_total"));
  static std::mutex mutex;
  static std::set<std::uint64_t> warned;
  std::scoped_lock lock(mutex);
  if (warned.insert(program.fingerprint()).second) {
    std::fprintf(stderr,
                 "[dfgen] jit backend: kernel '%s' falls back to the vm "
                 "interpreter (compile unavailable; results identical)\n",
                 program.name().c_str());
  }
}

class JitBackend : public ExecutionBackend {
 public:
  BackendKind kind() const override { return BackendKind::jit; }
  double compute_efficiency() const override { return kCompiledEfficiency; }
  std::shared_ptr<const CompiledKernel> prepare(
      const Program& program) override {
    std::shared_ptr<const jit::Module> module =
        ProgramCache::instance().jit_module(program);
    if (module != nullptr) {
      return std::make_shared<const JitKernel>(std::move(module));
    }
    note_jit_fallback(program);
    return backend_for(BackendKind::vm)->prepare(program);
  }
};

/// auto = jit with a different name: both degrade to the VM per program
/// and never fail a launch, so the only distinction left is intent —
/// `jit` insists and makes fallbacks visible, `auto` treats them as the
/// expected outcome on toolchain-less hosts.
class AutoBackend final : public JitBackend {
 public:
  BackendKind kind() const override { return BackendKind::auto_select; }
};

}  // namespace

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::scalar:
      return "scalar";
    case BackendKind::vm:
      return "vm";
    case BackendKind::jit:
      return "jit";
    case BackendKind::auto_select:
      return "auto";
  }
  return "vm";
}

std::optional<BackendKind> parse_backend(std::string_view name) {
  if (name == "scalar") return BackendKind::scalar;
  if (name == "vm") return BackendKind::vm;
  if (name == "jit") return BackendKind::jit;
  if (name == "auto") return BackendKind::auto_select;
  return std::nullopt;
}

std::shared_ptr<ExecutionBackend> backend_for(BackendKind kind) {
  static const std::shared_ptr<ExecutionBackend> scalar =
      std::make_shared<ScalarBackend>();
  static const std::shared_ptr<ExecutionBackend> vm =
      std::make_shared<VmBackend>();
  static const std::shared_ptr<ExecutionBackend> jit =
      std::make_shared<JitBackend>();
  static const std::shared_ptr<ExecutionBackend> auto_select =
      std::make_shared<AutoBackend>();
  switch (kind) {
    case BackendKind::scalar:
      return scalar;
    case BackendKind::jit:
      return jit;
    case BackendKind::auto_select:
      return auto_select;
    case BackendKind::vm:
      break;
  }
  return vm;
}

BackendKind default_backend_kind() {
  const std::string value = support::env::get_string("DFGEN_BACKEND", "");
  if (value.empty()) return BackendKind::vm;
  const std::optional<BackendKind> parsed = parse_backend(value);
  if (parsed.has_value()) return *parsed;
  static std::once_flag warned;
  std::call_once(warned, [&value] {
    std::fprintf(stderr,
                 "[dfgen] DFGEN_BACKEND=%s is not one of "
                 "{scalar, vm, jit, auto}; using vm\n",
                 value.c_str());
  });
  return BackendKind::vm;
}

}  // namespace dfg::kernels
