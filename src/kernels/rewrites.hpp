// Kernel layer: pre-codegen network rewrites.
//
// A small algebraic rewrite pass over the dataflow DAG, run before kernel
// generation so *every* execution backend — the tiled VM, the scalar
// oracle replays in tests, and the jit's native code — sees the same
// simplified program. Only rewrites that are bit-exact in IEEE float
// arithmetic are admitted (sign-bit manipulations, absorption of
// idempotent ops); anything value-changing (reassociation, distribution)
// stays out, because the backends' bit-identical contract is checked by
// the fuzzer.
//
// Rules:
//   neg(neg(x))  -> x        (two sign flips cancel, all inputs, NaN safe)
//   abs(abs(x))  -> abs(x)   (abs is idempotent)
//   abs(neg(x))  -> abs(x)   (abs discards the sign bit)
//   decompose(pack3(a,b,c), i) -> {a,b,c}[i]
//                             (lane i of a pack *is* operand i, bitwise —
//                              this is what fuses curl components back
//                              into the scalar expressions around them)
//
// The pass rewires consumer input edges in place and never adds, removes
// or renumbers nodes: pipeline-stage resolution and materialised-parameter
// naming key on node ids, so ids are load-bearing. Orphaned producers stay
// in the spec — the bytecode optimizer's dead-code elimination drops their
// instructions. grad3d consumers are left untouched: their field-operand
// edges define materialisation barriers, and moving one would shift the
// stage partitioning out from under the strategies.
#pragma once

#include <cstddef>

#include "dataflow/spec.hpp"

namespace dfg::kernels {

struct NetworkRewriteStats {
  /// Consumer edges redirected past a neg(neg(x)) chain.
  std::size_t double_negation = 0;
  /// abs-of-abs edges collapsed onto the inner abs.
  std::size_t nested_abs = 0;
  /// abs inputs hopped over a neg producer.
  std::size_t abs_of_negation = 0;
  /// Consumer edges redirected past a decompose-of-pack3 pair onto the
  /// packed scalar operand.
  std::size_t decompose_of_pack = 0;

  std::size_t total() const {
    return double_negation + nested_abs + abs_of_negation + decompose_of_pack;
  }
};

/// Returns a copy of `spec` with the rules above applied to a fixed point
/// (one ascending pass suffices: ids are construction order, so every
/// producer is fully resolved before its consumers are visited). Stats,
/// when requested, count actual edge rewires — zero means the returned
/// spec is structurally identical to the input.
dataflow::NetworkSpec rewrite_network(const dataflow::NetworkSpec& spec,
                                      NetworkRewriteStats* stats = nullptr);

}  // namespace dfg::kernels
