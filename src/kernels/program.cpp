#include "kernels/program.hpp"

#include <algorithm>
#include <bit>

#include "support/checksum.hpp"
#include "support/error.hpp"

namespace dfg::kernels {

std::uint64_t op_flops(Op op) {
  switch (op) {
    case Op::load_global:
    case Op::load_global_vec:
    case Op::load_const:
    case Op::store:
    case Op::store_vec:
    case Op::component:
      return 0;
    case Op::add:
    case Op::sub:
    case Op::mul:
    case Op::div:
    case Op::neg:
    case Op::abs:
    case Op::min:
    case Op::max:
    case Op::cmp_gt:
    case Op::cmp_lt:
    case Op::cmp_ge:
    case Op::cmp_le:
    case Op::cmp_eq:
    case Op::cmp_ne:
    case Op::select:
      return 1;
    case Op::pack:
      return 0;
    case Op::sqrt:
      return 4;  // sqrt costs several fma-equivalents on both targets
    case Op::floor:
    case Op::ceil:
      return 1;
    case Op::sin:
    case Op::cos:
    case Op::tan:
    case Op::acos:
    case Op::exp:
    case Op::log:
    case Op::tanh:
      return 8;  // transcendental special-function units / polynomial cost
    case Op::pow:
      return 16;
    case Op::grad3d:
      // Per axis: one field difference, cell-center reconstruction from node
      // coordinates (2 adds + 2 muls), one coordinate difference, one divide.
      return 30;
  }
  return 0;
}

std::uint64_t op_global_bytes(Op op) {
  switch (op) {
    case Op::load_global:
      return sizeof(float);
    case Op::load_global_vec:
      return 4 * sizeof(float);
    case Op::store:
      return sizeof(float);
    case Op::store_vec:
      return 4 * sizeof(float);
    case Op::grad3d:
      // Six stencil reads of the field plus six node-coordinate reads; the
      // tiny dims buffer is treated as cached.
      return 12 * sizeof(float);
    default:
      return 0;
  }
}

const char* op_name(Op op) {
  switch (op) {
    case Op::load_global:
      return "load_global";
    case Op::load_global_vec:
      return "load_global_vec";
    case Op::load_const:
      return "load_const";
    case Op::store:
      return "store";
    case Op::store_vec:
      return "store_vec";
    case Op::add:
      return "add";
    case Op::sub:
      return "sub";
    case Op::mul:
      return "mul";
    case Op::div:
      return "div";
    case Op::sqrt:
      return "sqrt";
    case Op::neg:
      return "neg";
    case Op::abs:
      return "abs";
    case Op::sin:
      return "sin";
    case Op::cos:
      return "cos";
    case Op::tan:
      return "tan";
    case Op::acos:
      return "acos";
    case Op::exp:
      return "exp";
    case Op::log:
      return "log";
    case Op::tanh:
      return "tanh";
    case Op::floor:
      return "floor";
    case Op::ceil:
      return "ceil";
    case Op::min:
      return "min";
    case Op::max:
      return "max";
    case Op::pow:
      return "pow";
    case Op::component:
      return "component";
    case Op::cmp_gt:
      return "cmp_gt";
    case Op::cmp_lt:
      return "cmp_lt";
    case Op::cmp_ge:
      return "cmp_ge";
    case Op::cmp_le:
      return "cmp_le";
    case Op::cmp_eq:
      return "cmp_eq";
    case Op::cmp_ne:
      return "cmp_ne";
    case Op::select:
      return "select";
    case Op::pack:
      return "pack";
    case Op::grad3d:
      return "grad3d";
  }
  return "?";
}

bool op_is_binary(Op op) {
  switch (op) {
    case Op::add:
    case Op::sub:
    case Op::mul:
    case Op::div:
    case Op::min:
    case Op::max:
    case Op::pow:
    case Op::cmp_gt:
    case Op::cmp_lt:
    case Op::cmp_ge:
    case Op::cmp_le:
    case Op::cmp_eq:
    case Op::cmp_ne:
      return true;
    default:
      return false;
  }
}

bool op_is_unary(Op op) {
  switch (op) {
    case Op::sqrt:
    case Op::neg:
    case Op::abs:
    case Op::sin:
    case Op::cos:
    case Op::tan:
    case Op::acos:
    case Op::exp:
    case Op::log:
    case Op::tanh:
    case Op::floor:
    case Op::ceil:
      return true;
    default:
      return false;
  }
}

int instr_register_operands(const Instr& instr) {
  if (op_is_binary(instr.op)) return 2;
  if (op_is_unary(instr.op) || instr.op == Op::component ||
      instr.op == Op::store || instr.op == Op::store_vec) {
    return 1;
  }
  if (instr.op == Op::select || instr.op == Op::pack) return 3;
  return 0;
}

bool op_defines_register(Op op) {
  return op != Op::store && op != Op::store_vec;
}

namespace {

/// Lanes a register holds as live scalars: vector-valued producers hold 3,
/// scalar producers 1.
int result_width(const Instr& instr, const std::vector<int>& widths) {
  switch (instr.op) {
    case Op::grad3d:
    case Op::load_global_vec:
    case Op::pack:
      return 3;
    case Op::select:
      return std::max(widths[instr.args[1]], widths[instr.args[2]]);
    case Op::add:
    case Op::sub:
    case Op::mul:
    case Op::div:
    case Op::min:
    case Op::max:
    case Op::pow:
      return std::max(widths[instr.args[0]], widths[instr.args[1]]);
    case Op::sqrt:
    case Op::neg:
    case Op::abs:
    case Op::sin:
    case Op::cos:
    case Op::tan:
    case Op::acos:
    case Op::exp:
    case Op::log:
    case Op::tanh:
    case Op::floor:
    case Op::ceil:
      return widths[instr.args[0]];
    default:
      return 1;
  }
}

}  // namespace

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name)) {}

std::uint16_t ProgramBuilder::add_param(const std::string& name, bool is_vec) {
  params_.push_back(BufferParam{name, is_vec});
  return static_cast<std::uint16_t>(params_.size() - 1);
}

std::uint16_t ProgramBuilder::fresh_reg() {
  if (next_reg_ == UINT16_MAX) {
    throw KernelError("program '" + name_ + "' exhausted virtual registers");
  }
  return next_reg_++;
}

std::uint16_t ProgramBuilder::emit_load_global(std::uint16_t param_slot) {
  const std::uint16_t dst = fresh_reg();
  code_.push_back(Instr{Op::load_global, dst, {param_slot}, 0.0f});
  return dst;
}

std::uint16_t ProgramBuilder::emit_load_global_vec(std::uint16_t param_slot) {
  const std::uint16_t dst = fresh_reg();
  code_.push_back(Instr{Op::load_global_vec, dst, {param_slot}, 0.0f});
  return dst;
}

std::uint16_t ProgramBuilder::emit_load_const(float value) {
  const std::uint16_t dst = fresh_reg();
  code_.push_back(Instr{Op::load_const, dst, {}, value});
  return dst;
}

std::uint16_t ProgramBuilder::emit_binary(Op op, std::uint16_t a,
                                          std::uint16_t b) {
  if (!op_is_binary(op)) {
    throw KernelError(std::string("emit_binary called with opcode ") +
                      op_name(op));
  }
  const std::uint16_t dst = fresh_reg();
  code_.push_back(Instr{op, dst, {a, b}, 0.0f});
  return dst;
}

std::uint16_t ProgramBuilder::emit_unary(Op op, std::uint16_t a) {
  if (!op_is_unary(op)) {
    throw KernelError(std::string("emit_unary called with opcode ") +
                      op_name(op));
  }
  const std::uint16_t dst = fresh_reg();
  code_.push_back(Instr{op, dst, {a}, 0.0f});
  return dst;
}

std::uint16_t ProgramBuilder::emit_component(std::uint16_t a, int component) {
  if (component < 0 || component > 3) {
    throw KernelError("component index " + std::to_string(component) +
                      " out of range [0, 3]");
  }
  const std::uint16_t dst = fresh_reg();
  code_.push_back(
      Instr{Op::component, dst, {a, static_cast<std::uint16_t>(component)},
            0.0f});
  return dst;
}

std::uint16_t ProgramBuilder::emit_select(std::uint16_t cond,
                                          std::uint16_t then_value,
                                          std::uint16_t else_value) {
  const std::uint16_t dst = fresh_reg();
  code_.push_back(Instr{Op::select, dst, {cond, then_value, else_value}, 0.0f});
  return dst;
}

std::uint16_t ProgramBuilder::emit_pack(std::uint16_t a, std::uint16_t b,
                                        std::uint16_t c) {
  const std::uint16_t dst = fresh_reg();
  code_.push_back(Instr{Op::pack, dst, {a, b, c}, 0.0f});
  return dst;
}

std::uint16_t ProgramBuilder::emit_grad3d(std::uint16_t field_slot,
                                          std::uint16_t dims_slot,
                                          std::uint16_t x_slot,
                                          std::uint16_t y_slot,
                                          std::uint16_t z_slot) {
  const std::uint16_t dst = fresh_reg();
  code_.push_back(Instr{Op::grad3d,
                        dst,
                        {field_slot, dims_slot, x_slot, y_slot, z_slot},
                        0.0f});
  return dst;
}

Program ProgramBuilder::finish(std::uint16_t result_reg, int out_components) {
  if (result_reg >= next_reg_) {
    throw KernelError("program '" + name_ + "' stores undefined register r" +
                      std::to_string(result_reg));
  }
  if (out_components != 1 && out_components != 3) {
    throw KernelError("out_components must be 1 or 3");
  }
  code_.push_back(Instr{out_components == 1 ? Op::store : Op::store_vec,
                        0,
                        {result_reg},
                        0.0f});
  return Program::assemble(std::move(name_), std::move(code_),
                           std::move(params_), next_reg_, out_components);
}

Program Program::assemble(std::string name, std::vector<Instr> code,
                          std::vector<BufferParam> params,
                          std::uint16_t num_regs, int out_components) {
  if (out_components != 1 && out_components != 3) {
    throw KernelError("out_components must be 1 or 3");
  }
  Program prog;
  prog.name_ = std::move(name);
  prog.code_ = std::move(code);
  prog.params_ = std::move(params);
  prog.num_regs_ = num_regs;
  prog.out_components_ = out_components;

  // Cost metadata.
  for (const Instr& instr : prog.code_) {
    prog.flops_per_item_ += op_flops(instr.op);
    prog.global_bytes_per_item_ += op_global_bytes(instr.op);
  }

  // Content fingerprint: every identity-relevant field, names excluded
  // (buffers bind positionally, so a rename cannot change the emitted
  // kernel). Fields hash individually rather than as raw struct bytes so
  // padding never leaks into the digest.
  std::uint64_t fp = support::kFnvOffsetBasis;
  const auto mix = [&fp](std::uint64_t value) {
    fp = support::fnv1a(&value, sizeof(value), fp);
  };
  mix(prog.code_.size());
  for (const Instr& instr : prog.code_) {
    mix(static_cast<std::uint64_t>(instr.op));
    mix(instr.dst);
    for (const std::uint16_t arg : instr.args) mix(arg);
    mix(std::bit_cast<std::uint32_t>(instr.imm));
  }
  mix(prog.params_.size());
  for (const BufferParam& param : prog.params_) {
    mix(param.is_vec ? 1 : 0);
  }
  mix(static_cast<std::uint64_t>(prog.out_components_));
  prog.fingerprint_ = fp;

  // Register-pressure scan: definition point and last use per register,
  // widths propagated through vector-valued ops, peak live scalars.
  const std::size_t n = prog.code_.size();
  std::vector<int> def_at(prog.num_regs_, -1);
  std::vector<int> last_use(prog.num_regs_, -1);
  std::vector<int> widths(prog.num_regs_, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& instr = prog.code_[i];
    const int operands = instr_register_operands(instr);
    for (int k = 0; k < operands; ++k) {
      const std::uint16_t reg = instr.args[static_cast<std::size_t>(k)];
      if (reg >= prog.num_regs_ || def_at[reg] < 0) {
        throw KernelError("program '" + prog.name_ + "' instruction " +
                          std::to_string(i) + " (" + op_name(instr.op) +
                          ") uses undefined register r" + std::to_string(reg));
      }
      last_use[reg] = static_cast<int>(i);
    }
    if (op_defines_register(instr.op)) {
      def_at[instr.dst] = static_cast<int>(i);
      widths[instr.dst] = result_width(instr, widths);
      last_use[instr.dst] = static_cast<int>(i);
    }
  }
  int max_live = 0;
  for (std::size_t i = 0; i < n; ++i) {
    int live = 0;
    for (std::uint16_t r = 0; r < prog.num_regs_; ++r) {
      if (def_at[r] >= 0 && def_at[r] <= static_cast<int>(i) &&
          last_use[r] >= static_cast<int>(i)) {
        live += widths[r];
      }
    }
    max_live = std::max(max_live, live);
  }
  prog.max_live_scalars_ = max_live;
  return prog;
}

}  // namespace dfg::kernels
