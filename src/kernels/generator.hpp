// Kernel layer: the dynamic kernel generator (kernel fusion).
//
// The core of the paper's *fusion* execution strategy (§III-C3): given a
// dataflow network, construct at runtime a single kernel implementing all
// of its operations, with
//   * per-element function calls for simple primitives,
//   * direct global-memory access for complex primitives (grad3d),
//   * source-code-level insertion of constants (no constant buffers),
//   * OpenCL vector types for multi-value results (grad3d -> float4),
//   * source-level array-decompose lowering (.s0/.s1/.s2 selects).
// Intermediate results live in registers, so the fused kernel touches
// global memory only for external inputs and the single output.
#pragma once

#include <set>
#include <string>

#include "dataflow/network.hpp"
#include "kernels/program.hpp"

namespace dfg::kernels {

/// Network nodes that must be materialised to device buffers: computed
/// values consumed by a gradient's field operand (a stencil cannot read
/// registers). Empty for networks a single fused kernel can execute.
std::set<int> materialization_barriers(const dataflow::Network& network);

/// Generates the fused kernel for a whole network. The program's buffer
/// parameters are the network's field sources, in first-use order, named
/// after the bound host arrays. Throws KernelError when the network
/// gradients a computed value (which cannot live in registers — use
/// generate_fused_pipeline), or on malformed networks (e.g. vector-valued
/// values consumed without decompose; the spec normally prevents these).
Program generate_fused(const dataflow::Network& network,
                       const std::string& kernel_name = "fused_expression");

/// Buffer-parameter name of a materialised intermediate in a partitioned
/// pipeline ("__m<node id>"). Reserved: expression field names cannot
/// start with "__m".
std::string materialized_param_name(int node_id);

/// A partitioned fused execution plan. When the network takes gradients of
/// *computed* values, those values cannot stay in registers: each becomes a
/// materialisation barrier. The pipeline fuses everything between barriers:
/// stage k computes one materialised value (stored to a device buffer named
/// by materialized_param_name), later stages read it back as a __global
/// parameter, and the final stage produces the network output. Networks
/// without such gradients yield a single stage identical to
/// generate_fused.
struct FusedPipeline {
  struct Stage {
    /// The network node this stage materialises; the final stage holds the
    /// network's output node.
    int node_id = -1;
    Program program;
  };
  /// Stages in execution order; the last one computes the network output.
  std::vector<Stage> stages;

  bool partitioned() const { return stages.size() > 1; }
};

/// Generates the (possibly single-stage) fused pipeline for a network.
/// When `optimize` is true (the default) every stage is run through the
/// bytecode optimizer (optimizer.hpp) — a bit-exact transformation.
/// generate_fused is left untouched by design: it exposes the raw generator
/// output for inspection and tests.
FusedPipeline generate_fused_pipeline(
    const dataflow::Network& network,
    const std::string& kernel_name = "fused_expression", bool optimize = true);

}  // namespace dfg::kernels
