#include "kernels/primitives.hpp"

#include <unordered_map>

#include "support/error.hpp"

namespace dfg::kernels {

namespace {

// The 3-D rectilinear gradient device function. This is the paper's example
// of a complex multi-line primitive ("over 50 lines of OpenCL source code");
// the VM's grad3d opcode implements exactly this discretisation.
constexpr const char* kGrad3dSource = R"(/* Cell-centered gradient on a 3-D rectilinear mesh.
 * field   : cell-centered scalar values, dims.x*dims.y*dims.z entries
 * dims    : number of cells per axis (nx, ny, nz)
 * x, y, z : cell-center coordinate values, one per cell (the host
 *           pipeline provides problem-sized coordinate arrays alongside
 *           the fields; see Table I's 24 bytes/cell)
 *
 * Discretisation: central differences over cell centers in the interior,
 * falling back to one-sided differences on the boundary faces. Because
 * the coordinate arrays carry explicit per-cell centers, non-uniform
 * (stretched) rectilinear spacing is handled exactly.
 *
 * An axis with a single cell has no neighbours in that direction; its
 * derivative component is defined as zero.
 *
 * Returns (df/dx, df/dy, df/dz, 0) as a float4.
 */
inline float axis_deriv(__global const float *field,
                        __global const float *coords,
                        int idx, int n, int stride, int base)
{
    if (n == 1)
        return 0.0f;
    int lo, hi;
    if (idx == 0)              { lo = 0;     hi = 1;     }
    else if (idx == n - 1)     { lo = n - 2; hi = n - 1; }
    else                       { lo = idx-1; hi = idx+1; }
    float df = field[base + hi * stride] - field[base + lo * stride];
    float dc = coords[base + hi * stride] - coords[base + lo * stride];
    return (dc == 0.0f) ? 0.0f : df / dc;
}

inline float4 grad3d(__global const float *field,
                     __global const float *dims,
                     __global const float *x,
                     __global const float *y,
                     __global const float *z,
                     int gid)
{
    int nx = (int)dims[0];
    int ny = (int)dims[1];
    int nz = (int)dims[2];
    int plane = nx * ny;
    int i = gid % nx;
    int j = (gid / nx) % ny;
    int k = gid / plane;
    float4 g;
    g.s0 = axis_deriv(field, x, i, nx, 1,     j * nx + k * plane);
    g.s1 = axis_deriv(field, y, j, ny, nx,    i + k * plane);
    g.s2 = axis_deriv(field, z, k, nz, plane, i + j * nx);
    g.s3 = 0.0f;
    return g;
}
)";

std::vector<PrimitiveInfo> make_registry() {
  std::vector<PrimitiveInfo> prims;
  const auto binary = [&](const char* name, const char* expr) {
    prims.push_back(PrimitiveInfo{
        name,
        2,
        1,
        {1, 1},
        std::string("inline float ") + name +
            "(float a, float b) { return " + expr + "; }\n"});
  };
  binary("add", "a + b");
  binary("sub", "a - b");
  binary("mult", "a * b");
  binary("div", "a / b");
  binary("min", "fmin(a, b)");
  binary("max", "fmax(a, b)");
  binary("pow", "pow(a, b)");
  binary("cmp_gt", "(a > b) ? 1.0f : 0.0f");
  binary("cmp_lt", "(a < b) ? 1.0f : 0.0f");
  binary("cmp_ge", "(a >= b) ? 1.0f : 0.0f");
  binary("cmp_le", "(a <= b) ? 1.0f : 0.0f");
  binary("cmp_eq", "(a == b) ? 1.0f : 0.0f");
  binary("cmp_ne", "(a != b) ? 1.0f : 0.0f");

  prims.push_back(PrimitiveInfo{
      "neg", 1, 1, {1},
      "inline float neg(float a) { return -a; }\n"});
  prims.push_back(PrimitiveInfo{
      "sqrt", 1, 1, {1},
      "inline float sqrt_(float a) { return sqrt(a); }\n"});
  prims.push_back(PrimitiveInfo{
      "abs", 1, 1, {1},
      "inline float abs_(float a) { return fabs(a); }\n"});
  const auto unary_builtin = [&](const char* name, const char* fn) {
    prims.push_back(PrimitiveInfo{
        name, 1, 1, {1},
        std::string("inline float ") + name + "_(float a) { return " + fn +
            "(a); }\n"});
  };
  unary_builtin("sin", "sin");
  unary_builtin("cos", "cos");
  unary_builtin("tan", "tan");
  unary_builtin("acos", "acos");
  unary_builtin("exp", "exp");
  unary_builtin("log", "log");
  unary_builtin("tanh", "tanh");
  unary_builtin("floor", "floor");
  unary_builtin("ceil", "ceil");
  prims.push_back(PrimitiveInfo{
      "select", 3, 1, {1, 1, 1},
      "inline float select_(float c, float t, float e)\n"
      "{ return (c != 0.0f) ? t : e; }\n"});
  prims.push_back(PrimitiveInfo{
      "pack3", 3, 3, {1, 1, 1},
      "inline float4 pack3(float a, float b, float c)\n"
      "{ return (float4)(a, b, c, 0.0f); }\n"});
  prims.push_back(PrimitiveInfo{
      "decompose", 1, 1, {3},
      "/* decompose selects one lane of a float4 value; the fused kernel\n"
      " * generator lowers it to a .sN access at source level. */\n"});
  prims.push_back(PrimitiveInfo{"grad3d", 5, 3, {1, 1, 1, 1, 1},
                                kGrad3dSource});
  prims.push_back(PrimitiveInfo{
      "const_fill", 0, 1, {},
      "/* materialises a constant as a problem-sized device array; used by\n"
      " * the staged strategy. The fusion strategy inlines constants at\n"
      " * source level instead. */\n"});
  return prims;
}

const std::unordered_map<std::string, const PrimitiveInfo*>& index() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, const PrimitiveInfo*>();
    for (const PrimitiveInfo& p : all_primitives()) (*m)[p.name] = &p;
    return m;
  }();
  return *map;
}

}  // namespace

Op unary_opcode_for(const std::string& kind) {
  if (kind == "neg") return Op::neg;
  if (kind == "sqrt") return Op::sqrt;
  if (kind == "abs") return Op::abs;
  if (kind == "sin") return Op::sin;
  if (kind == "cos") return Op::cos;
  if (kind == "tan") return Op::tan;
  if (kind == "acos") return Op::acos;
  if (kind == "exp") return Op::exp;
  if (kind == "log") return Op::log;
  if (kind == "tanh") return Op::tanh;
  if (kind == "floor") return Op::floor;
  if (kind == "ceil") return Op::ceil;
  throw KernelError("'" + kind + "' is not a unary primitive");
}

Op binary_opcode_for(const std::string& kind) {
  if (kind == "add") return Op::add;
  if (kind == "sub") return Op::sub;
  if (kind == "mult") return Op::mul;
  if (kind == "div") return Op::div;
  if (kind == "min") return Op::min;
  if (kind == "max") return Op::max;
  if (kind == "pow") return Op::pow;
  if (kind == "cmp_gt") return Op::cmp_gt;
  if (kind == "cmp_lt") return Op::cmp_lt;
  if (kind == "cmp_ge") return Op::cmp_ge;
  if (kind == "cmp_le") return Op::cmp_le;
  if (kind == "cmp_eq") return Op::cmp_eq;
  if (kind == "cmp_ne") return Op::cmp_ne;
  throw KernelError("'" + kind + "' is not a binary primitive");
}

const std::vector<PrimitiveInfo>& all_primitives() {
  static const std::vector<PrimitiveInfo> registry = make_registry();
  return registry;
}

const PrimitiveInfo* find_primitive(const std::string& name) {
  const auto it = index().find(name);
  return it == index().end() ? nullptr : it->second;
}

bool is_comparison(const std::string& name) {
  return name.rfind("cmp_", 0) == 0 && find_primitive(name) != nullptr;
}

Program make_standalone_program(const std::string& kind, int component,
                                float value) {
  const PrimitiveInfo* info = find_primitive(kind);
  if (info == nullptr) {
    throw KernelError("unknown primitive '" + kind + "'");
  }
  ProgramBuilder b(kind);
  if (kind == "decompose") {
    const std::uint16_t in = b.add_param("in0", /*is_vec=*/true);
    const std::uint16_t v = b.emit_load_global_vec(in);
    return b.finish(b.emit_component(v, component), 1);
  }
  if (kind == "grad3d") {
    const std::uint16_t field = b.add_param("field");
    const std::uint16_t dims = b.add_param("dims");
    const std::uint16_t x = b.add_param("x");
    const std::uint16_t y = b.add_param("y");
    const std::uint16_t z = b.add_param("z");
    return b.finish(b.emit_grad3d(field, dims, x, y, z), 3);
  }
  if (kind == "const_fill") {
    return b.finish(b.emit_load_const(value), 1);
  }
  if (kind == "select") {
    const std::uint16_t c = b.emit_load_global(b.add_param("in0"));
    const std::uint16_t t = b.emit_load_global(b.add_param("in1"));
    const std::uint16_t e = b.emit_load_global(b.add_param("in2"));
    return b.finish(b.emit_select(c, t, e), 1);
  }
  if (kind == "pack3") {
    const std::uint16_t a = b.emit_load_global(b.add_param("in0"));
    const std::uint16_t c = b.emit_load_global(b.add_param("in1"));
    const std::uint16_t d = b.emit_load_global(b.add_param("in2"));
    return b.finish(b.emit_pack(a, c, d), 3);
  }
  if (info->arity == 1) {
    const std::uint16_t a = b.emit_load_global(b.add_param("in0"));
    return b.finish(b.emit_unary(unary_opcode_for(kind), a), 1);
  }
  if (info->arity == 2) {
    const std::uint16_t a = b.emit_load_global(b.add_param("in0"));
    const std::uint16_t c = b.emit_load_global(b.add_param("in1"));
    return b.finish(b.emit_binary(binary_opcode_for(kind), a, c), 1);
  }
  throw KernelError("no standalone kernel for primitive '" + kind + "'");
}

}  // namespace dfg::kernels
