#include "kernels/source_printer.hpp"

#include <set>
#include <sstream>

#include "kernels/primitives.hpp"
#include "support/string_util.hpp"

namespace dfg::kernels {

namespace {

std::string reg(std::uint16_t r) { return "r" + std::to_string(r); }

/// Primitive whose device function the preamble must include for an opcode;
/// empty when the opcode lowers to an operator or built-in.
const char* preamble_primitive(Op op) {
  switch (op) {
    case Op::grad3d:
      return "grad3d";
    default:
      return nullptr;
  }
}

const char* infix_operator(Op op) {
  switch (op) {
    case Op::add:
      return "+";
    case Op::sub:
      return "-";
    case Op::mul:
      return "*";
    case Op::div:
      return "/";
    default:
      return nullptr;
  }
}

const char* comparison_operator(Op op) {
  switch (op) {
    case Op::cmp_gt:
      return ">";
    case Op::cmp_lt:
      return "<";
    case Op::cmp_ge:
      return ">=";
    case Op::cmp_le:
      return "<=";
    case Op::cmp_eq:
      return "==";
    case Op::cmp_ne:
      return "!=";
    default:
      return nullptr;
  }
}

void print_instr(std::ostringstream& os, const Program& program,
                 const Instr& in, bool declare) {
  const auto& params = program.params();
  // After register coalescing a register may be redefined; declare it at
  // its first definition only so the emitted source stays valid OpenCL C.
  const std::string dst =
      declare ? "float4 " + reg(in.dst) : reg(in.dst);
  os << "    ";
  if (const char* op = infix_operator(in.op)) {
    os << dst << " = " << reg(in.args[0]) << " " << op
       << " " << reg(in.args[1]) << ";";
  } else if (const char* cmp = comparison_operator(in.op)) {
    os << dst << " = (float4)((" << reg(in.args[0])
       << ".s0 " << cmp << " " << reg(in.args[1])
       << ".s0) ? 1.0f : 0.0f, 0.0f, 0.0f, 0.0f);";
  } else {
    switch (in.op) {
      case Op::load_global:
        os << dst << " = (float4)("
           << params[in.args[0]].name << "[gid], 0.0f, 0.0f, 0.0f);";
        break;
      case Op::load_global_vec:
        os << dst << " = vload4(gid, "
           << params[in.args[0]].name << ");";
        break;
      case Op::load_const:
        // Source-code-level constant insertion.
        os << dst << " = (float4)("
           << support::format_float(in.imm) << "f, 0.0f, 0.0f, 0.0f);";
        break;
      case Op::sqrt:
        os << dst << " = sqrt(" << reg(in.args[0])
           << ");";
        break;
      case Op::neg:
        os << dst << " = -" << reg(in.args[0]) << ";";
        break;
      case Op::abs:
        os << dst << " = fabs(" << reg(in.args[0])
           << ");";
        break;
      case Op::sin:
      case Op::cos:
      case Op::tan:
      case Op::exp:
      case Op::log:
      case Op::tanh:
      case Op::floor:
      case Op::ceil:
        os << dst << " = " << op_name(in.op) << "("
           << reg(in.args[0]) << ");";
        break;
      case Op::min:
        os << dst << " = fmin(" << reg(in.args[0])
           << ", " << reg(in.args[1]) << ");";
        break;
      case Op::max:
        os << dst << " = fmax(" << reg(in.args[0])
           << ", " << reg(in.args[1]) << ");";
        break;
      case Op::pow:
        os << dst << " = pow(" << reg(in.args[0])
           << ", " << reg(in.args[1]) << ");";
        break;
      case Op::component:
        // Source-level decompose: an OpenCL vector sub-component select.
        os << dst << " = (float4)(" << reg(in.args[0])
           << ".s" << in.args[1] << ", 0.0f, 0.0f, 0.0f);";
        break;
      case Op::select:
        os << dst << " = (" << reg(in.args[0])
           << ".s0 != 0.0f) ? " << reg(in.args[1]) << " : " << reg(in.args[2])
           << ";";
        break;
      case Op::grad3d:
        os << dst << " = grad3d("
           << params[in.args[0]].name << ", " << params[in.args[1]].name
           << ", " << params[in.args[2]].name << ", "
           << params[in.args[3]].name << ", " << params[in.args[4]].name
           << ", gid);";
        break;
      case Op::store:
        os << "out[gid] = " << reg(in.args[0]) << ".s0;";
        break;
      case Op::store_vec:
        os << "vstore4(" << reg(in.args[0]) << ", gid, out);";
        break;
      default:
        os << "/* " << op_name(in.op) << " */";
        break;
    }
  }
  os << "\n";
}

}  // namespace

std::string to_opencl_body(const Program& program) {
  std::ostringstream os;
  os << "__kernel void " << program.name() << "(\n";
  for (const BufferParam& p : program.params()) {
    os << "    __global const float *" << p.name << ",\n";
  }
  os << "    __global float *out)\n{\n";
  os << "    int gid = get_global_id(0);\n";
  std::set<std::uint16_t> declared;
  for (const Instr& in : program.code()) {
    const bool declare =
        op_defines_register(in.op) && declared.insert(in.dst).second;
    print_instr(os, program, in, declare);
  }
  os << "}\n";
  return os.str();
}

std::string to_opencl_source(const Program& program) {
  std::ostringstream os;
  os << "/* generated by dfgen: kernel '" << program.name() << "', "
     << program.code().size() << " instructions, peak "
     << program.max_live_scalar_registers() << " live scalar registers */\n";
  std::set<std::string> included;
  for (const Instr& in : program.code()) {
    if (const char* prim = preamble_primitive(in.op)) {
      if (included.insert(prim).second) {
        const PrimitiveInfo* info = find_primitive(prim);
        if (info != nullptr) os << info->ocl_source << "\n";
      }
    }
  }
  os << to_opencl_body(program);
  return os.str();
}

}  // namespace dfg::kernels
