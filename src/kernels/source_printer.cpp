#include "kernels/source_printer.hpp"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "kernels/primitives.hpp"
#include "kernels/vm.hpp"
#include "support/string_util.hpp"

namespace dfg::kernels {

namespace {

std::string reg(std::uint16_t r) { return "r" + std::to_string(r); }

/// Primitive whose device function the preamble must include for an opcode;
/// empty when the opcode lowers to an operator or built-in.
const char* preamble_primitive(Op op) {
  switch (op) {
    case Op::grad3d:
      return "grad3d";
    default:
      return nullptr;
  }
}

const char* infix_operator(Op op) {
  switch (op) {
    case Op::add:
      return "+";
    case Op::sub:
      return "-";
    case Op::mul:
      return "*";
    case Op::div:
      return "/";
    default:
      return nullptr;
  }
}

const char* comparison_operator(Op op) {
  switch (op) {
    case Op::cmp_gt:
      return ">";
    case Op::cmp_lt:
      return "<";
    case Op::cmp_ge:
      return ">=";
    case Op::cmp_le:
      return "<=";
    case Op::cmp_eq:
      return "==";
    case Op::cmp_ne:
      return "!=";
    default:
      return nullptr;
  }
}

void print_instr(std::ostringstream& os, const Program& program,
                 const Instr& in, bool declare) {
  const auto& params = program.params();
  // After register coalescing a register may be redefined; declare it at
  // its first definition only so the emitted source stays valid OpenCL C.
  const std::string dst =
      declare ? "float4 " + reg(in.dst) : reg(in.dst);
  os << "    ";
  if (const char* op = infix_operator(in.op)) {
    os << dst << " = " << reg(in.args[0]) << " " << op
       << " " << reg(in.args[1]) << ";";
  } else if (const char* cmp = comparison_operator(in.op)) {
    os << dst << " = (float4)((" << reg(in.args[0])
       << ".s0 " << cmp << " " << reg(in.args[1])
       << ".s0) ? 1.0f : 0.0f, 0.0f, 0.0f, 0.0f);";
  } else {
    switch (in.op) {
      case Op::load_global:
        os << dst << " = (float4)("
           << params[in.args[0]].name << "[gid], 0.0f, 0.0f, 0.0f);";
        break;
      case Op::load_global_vec:
        os << dst << " = vload4(gid, "
           << params[in.args[0]].name << ");";
        break;
      case Op::load_const:
        // Source-code-level constant insertion.
        os << dst << " = (float4)("
           << support::format_float(in.imm) << "f, 0.0f, 0.0f, 0.0f);";
        break;
      case Op::sqrt:
        os << dst << " = sqrt(" << reg(in.args[0])
           << ");";
        break;
      case Op::neg:
        os << dst << " = -" << reg(in.args[0]) << ";";
        break;
      case Op::abs:
        os << dst << " = fabs(" << reg(in.args[0])
           << ");";
        break;
      case Op::sin:
      case Op::cos:
      case Op::tan:
      case Op::acos:
      case Op::exp:
      case Op::log:
      case Op::tanh:
      case Op::floor:
      case Op::ceil:
        os << dst << " = " << op_name(in.op) << "("
           << reg(in.args[0]) << ");";
        break;
      case Op::min:
        os << dst << " = fmin(" << reg(in.args[0])
           << ", " << reg(in.args[1]) << ");";
        break;
      case Op::max:
        os << dst << " = fmax(" << reg(in.args[0])
           << ", " << reg(in.args[1]) << ");";
        break;
      case Op::pow:
        os << dst << " = pow(" << reg(in.args[0])
           << ", " << reg(in.args[1]) << ");";
        break;
      case Op::component:
        // Source-level decompose: an OpenCL vector sub-component select.
        os << dst << " = (float4)(" << reg(in.args[0])
           << ".s" << in.args[1] << ", 0.0f, 0.0f, 0.0f);";
        break;
      case Op::select:
        os << dst << " = (" << reg(in.args[0])
           << ".s0 != 0.0f) ? " << reg(in.args[1]) << " : " << reg(in.args[2])
           << ";";
        break;
      case Op::pack:
        os << dst << " = (float4)(" << reg(in.args[0]) << ".s0, "
           << reg(in.args[1]) << ".s0, " << reg(in.args[2]) << ".s0, 0.0f);";
        break;
      case Op::grad3d:
        os << dst << " = grad3d("
           << params[in.args[0]].name << ", " << params[in.args[1]].name
           << ", " << params[in.args[2]].name << ", "
           << params[in.args[3]].name << ", " << params[in.args[4]].name
           << ", gid);";
        break;
      case Op::store:
        os << "out[gid] = " << reg(in.args[0]) << ".s0;";
        break;
      case Op::store_vec:
        os << "vstore4(" << reg(in.args[0]) << ", gid, out);";
        break;
      default:
        os << "/* " << op_name(in.op) << " */";
        break;
    }
  }
  os << "\n";
}

}  // namespace

std::string to_opencl_body(const Program& program) {
  std::ostringstream os;
  os << "__kernel void " << program.name() << "(\n";
  for (const BufferParam& p : program.params()) {
    os << "    __global const float *" << p.name << ",\n";
  }
  os << "    __global float *out)\n{\n";
  os << "    int gid = get_global_id(0);\n";
  std::set<std::uint16_t> declared;
  for (const Instr& in : program.code()) {
    const bool declare =
        op_defines_register(in.op) && declared.insert(in.dst).second;
    print_instr(os, program, in, declare);
  }
  os << "}\n";
  return os.str();
}

std::string to_opencl_source(const Program& program) {
  std::ostringstream os;
  os << "/* generated by dfgen: kernel '" << program.name() << "', "
     << program.code().size() << " instructions, peak "
     << program.max_live_scalar_registers() << " live scalar registers */\n";
  std::set<std::string> included;
  for (const Instr& in : program.code()) {
    if (const char* prim = preamble_primitive(in.op)) {
      if (included.insert(prim).second) {
        const PrimitiveInfo* info = find_primitive(prim);
        if (info != nullptr) os << info->ocl_source << "\n";
      }
    }
  }
  os << to_opencl_body(program);
  return os.str();
}

namespace {

// ---- C translation-unit emission (jit backend) ----------------------------
//
// Bit-exactness discipline: every statement below mirrors one interpreter
// operation operand-for-operand. The float libm entry points (sqrtf, powf,
// fminf, ...) are the functions the C++ std:: float overloads resolve to,
// so the compiled object and the interpreters execute the same library
// code; division, comparison and negation are IEEE-defined; the gradient
// spans replicate the tiled VM's row loop including its boundary peeling.
// Compilation passes -ffp-contract=off so no statement fuses into an fma
// the interpreters would not perform.

std::string c_lane(std::uint16_t r, int lane) {
  return "r" + std::to_string(r) + "_" + std::to_string(lane);
}

std::string c_buf(std::uint16_t slot) { return "b" + std::to_string(slot); }

/// Exact float literal as a bit pattern: format_float round-trips decimals,
/// but a bit cast can never be misread by a foreign compiler's strtof, and
/// it represents NaN/inf immediates too.
std::string c_const(float value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "dfgen_bits(0x%08xu) /* %s */",
                std::bit_cast<std::uint32_t>(value),
                support::format_float(value).c_str());
  return buf;
}

const char* c_unary_fn(Op op) {
  switch (op) {
    case Op::sqrt:
      return "sqrtf";
    case Op::abs:
      return "fabsf";
    case Op::sin:
      return "sinf";
    case Op::cos:
      return "cosf";
    case Op::tan:
      return "tanf";
    case Op::acos:
      return "acosf";
    case Op::exp:
      return "expf";
    case Op::log:
      return "logf";
    case Op::tanh:
      return "tanhf";
    case Op::floor:
      return "floorf";
    case Op::ceil:
      return "ceilf";
    default:
      return nullptr;
  }
}

const char* c_binary_fn(Op op) {
  switch (op) {
    case Op::min:
      return "fminf";
    case Op::max:
      return "fmaxf";
    case Op::pow:
      return "powf";
    default:
      return nullptr;
  }
}

/// The axis_derivative + row-span helpers, verbatim ports of the VM's
/// gradient path. d0/d1/d2 are null for dead lanes.
constexpr const char* kGradHelpers = R"(
static float dfgen_axis(const float* field, const float* coords, size_t idx,
                        size_t n, size_t stride, size_t base) {
  size_t lo_i, hi_i;
  float df, dc;
  if (n == 1) return 0.0f;
  if (idx == 0) {
    lo_i = 0; hi_i = 1;
  } else if (idx == n - 1) {
    lo_i = n - 2; hi_i = n - 1;
  } else {
    lo_i = idx - 1; hi_i = idx + 1;
  }
  df = field[base + hi_i * stride] - field[base + lo_i * stride];
  dc = coords[base + hi_i * stride] - coords[base + lo_i * stride];
  return dc == 0.0f ? 0.0f : df / dc;
}

static void dfgen_grad_rows(const float* field, const float* x,
                            const float* y, const float* z,
                            size_t nx, size_t ny, size_t nz,
                            size_t t0, size_t count,
                            float* restrict d0, float* restrict d1,
                            float* restrict d2) {
  const size_t plane = nx * ny;
  size_t i = t0 % nx;
  size_t j = (t0 / nx) % ny;
  size_t k = t0 / plane;
  size_t e = 0;
  while (e < count) {
    const size_t rem = count - e;
    const size_t row_len = rem < nx - i ? rem : nx - i;
    const size_t row_base = j * nx + k * plane;
    if (d0 != 0) {
      if (nx == 1) {
        for (size_t t = 0; t < row_len; ++t) d0[e + t] = 0.0f;
      } else {
        const float* f = field + row_base;
        const float* cx = x + row_base;
        const size_t t_end = (i + row_len == nx) ? row_len - 1 : row_len;
        size_t t = 0;
        if (i == 0) {
          d0[e] = dfgen_axis(field, x, 0, nx, 1, row_base);
          t = 1;
        }
        for (; t < t_end; ++t) {
          const size_t ii = i + t;
          const float df = f[ii + 1] - f[ii - 1];
          const float dc = cx[ii + 1] - cx[ii - 1];
          d0[e + t] = dc == 0.0f ? 0.0f : df / dc;
        }
        if (t_end < row_len) {
          d0[e + row_len - 1] = dfgen_axis(field, x, nx - 1, nx, 1, row_base);
        }
      }
    }
    if (d1 != 0) {
      if (ny == 1) {
        for (size_t t = 0; t < row_len; ++t) d1[e + t] = 0.0f;
      } else {
        const size_t lo_j = j - (j > 0 ? 1 : 0);
        const size_t hi_j = j + (j < ny - 1 ? 1 : 0);
        const float* fhi = field + k * plane + hi_j * nx + i;
        const float* flo = field + k * plane + lo_j * nx + i;
        const float* chi = y + k * plane + hi_j * nx + i;
        const float* clo = y + k * plane + lo_j * nx + i;
        for (size_t t = 0; t < row_len; ++t) {
          const float df = fhi[t] - flo[t];
          const float dc = chi[t] - clo[t];
          d1[e + t] = dc == 0.0f ? 0.0f : df / dc;
        }
      }
    }
    if (d2 != 0) {
      if (nz == 1) {
        for (size_t t = 0; t < row_len; ++t) d2[e + t] = 0.0f;
      } else {
        const size_t lo_k = k - (k > 0 ? 1 : 0);
        const size_t hi_k = k + (k < nz - 1 ? 1 : 0);
        const float* fhi = field + j * nx + hi_k * plane + i;
        const float* flo = field + j * nx + lo_k * plane + i;
        const float* chi = z + j * nx + hi_k * plane + i;
        const float* clo = z + j * nx + lo_k * plane + i;
        for (size_t t = 0; t < row_len; ++t) {
          const float df = fhi[t] - flo[t];
          const float dc = chi[t] - clo[t];
          d2[e + t] = dc == 0.0f ? 0.0f : df / dc;
        }
      }
    }
    e += row_len;
    i = 0;
    ++j;
    if (j == ny) {
      j = 0;
      ++k;
    }
  }
}
)";

/// Emits one fused-loop statement per live lane of `in`. Ordering inside
/// an instruction mirrors the tiled VM where aliasing matters: select
/// lanes descend so the condition local (which register coalescing may
/// alias with the destination) is consumed before lane 0 overwrites it,
/// and the lane-0 value of a scalar producer is written before its high
/// lanes are zeroed.
void emit_c_instr(std::ostringstream& os, const Instr& in,
                  std::uint8_t mask) {
  const auto stmt = [&os](const std::string& text) {
    os << "      " << text << "\n";
  };
  const auto zero_high = [&](std::uint16_t r) {
    for (int lane = 1; lane < 4; ++lane) {
      if (mask & (1u << lane)) stmt(c_lane(r, lane) + " = 0.0f;");
    }
  };
  if (const char* op = [&]() -> const char* {
        switch (in.op) {
          case Op::add:
            return "+";
          case Op::sub:
            return "-";
          case Op::mul:
            return "*";
          case Op::div:
            return "/";
          default:
            return nullptr;
        }
      }()) {
    for (int lane = 0; lane < 4; ++lane) {
      if (!(mask & (1u << lane))) continue;
      stmt(c_lane(in.dst, lane) + " = " + c_lane(in.args[0], lane) + " " +
           op + " " + c_lane(in.args[1], lane) + ";");
    }
    return;
  }
  if (const char* fn = c_binary_fn(in.op)) {
    for (int lane = 0; lane < 4; ++lane) {
      if (!(mask & (1u << lane))) continue;
      stmt(c_lane(in.dst, lane) + " = " + fn + "(" +
           c_lane(in.args[0], lane) + ", " + c_lane(in.args[1], lane) + ");");
    }
    return;
  }
  if (in.op == Op::neg) {
    for (int lane = 0; lane < 4; ++lane) {
      if (!(mask & (1u << lane))) continue;
      stmt(c_lane(in.dst, lane) + " = -" + c_lane(in.args[0], lane) + ";");
    }
    return;
  }
  if (const char* fn = c_unary_fn(in.op)) {
    for (int lane = 0; lane < 4; ++lane) {
      if (!(mask & (1u << lane))) continue;
      stmt(c_lane(in.dst, lane) + " = " + fn + "(" +
           c_lane(in.args[0], lane) + ");");
    }
    return;
  }
  if (const char* cmp = comparison_operator(in.op)) {
    if (mask & 0x1) {
      stmt(c_lane(in.dst, 0) + " = (" + c_lane(in.args[0], 0) + " " + cmp +
           " " + c_lane(in.args[1], 0) + ") ? 1.0f : 0.0f;");
    }
    zero_high(in.dst);
    return;
  }
  switch (in.op) {
    case Op::load_global:
      if (mask & 0x1) {
        stmt(c_lane(in.dst, 0) + " = " + c_buf(in.args[0]) + "[gid];");
      }
      zero_high(in.dst);
      break;
    case Op::load_global_vec:
      for (int lane = 0; lane < 4; ++lane) {
        if (!(mask & (1u << lane))) continue;
        stmt(c_lane(in.dst, lane) + " = " + c_buf(in.args[0]) + "[gid * 4 + " +
             std::to_string(lane) + "];");
      }
      break;
    case Op::load_const:
      if (mask & 0x1) {
        stmt(c_lane(in.dst, 0) + " = " + c_const(in.imm) + ";");
      }
      zero_high(in.dst);
      break;
    case Op::component:
      if (mask & 0x1) {
        stmt(c_lane(in.dst, 0) + " = " +
             c_lane(in.args[0], static_cast<int>(in.args[1])) + ";");
      }
      zero_high(in.dst);
      break;
    case Op::select:
      for (int lane = 3; lane >= 0; --lane) {
        if (!(mask & (1u << lane))) continue;
        stmt(c_lane(in.dst, lane) + " = (" + c_lane(in.args[0], 0) +
             " != 0.0f) ? " + c_lane(in.args[1], lane) + " : " +
             c_lane(in.args[2], lane) + ";");
      }
      break;
    case Op::pack:
      // Descending lanes: the lane-0 operand locals (which coalescing may
      // alias with dst lane 0) are consumed before lane 0 is overwritten.
      if (mask & 0x8) stmt(c_lane(in.dst, 3) + " = 0.0f;");
      for (int lane = 2; lane >= 0; --lane) {
        if (!(mask & (1u << lane))) continue;
        stmt(c_lane(in.dst, lane) + " = " +
             c_lane(in.args[static_cast<std::size_t>(lane)], 0) + ";");
      }
      break;
    case Op::store:
      stmt("out[gid] = " + c_lane(in.args[0], 0) + ";");
      break;
    case Op::store_vec:
      for (int lane = 0; lane < 4; ++lane) {
        stmt("out[gid * 4 + " + std::to_string(lane) + "] = " +
             c_lane(in.args[0], lane) + ";");
      }
      break;
    default:
      break;  // grad3d is hoisted to the tile preamble
  }
}

}  // namespace

std::string to_c_source(const Program& program) {
  const std::vector<std::uint8_t> masks = live_lane_masks(program);
  const std::vector<Instr>& code = program.code();

  bool uses_grad = false;
  bool uses_const = false;
  bool uses_libm = false;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    if (masks[pc] == 0 && op_defines_register(code[pc].op)) continue;
    if (code[pc].op == Op::grad3d) uses_grad = true;
    if (code[pc].op == Op::load_const) uses_const = true;
    if (c_unary_fn(code[pc].op) != nullptr ||
        c_binary_fn(code[pc].op) != nullptr) {
      uses_libm = true;
    }
  }

  std::ostringstream os;
  os << "/* generated by dfgen jit backend: kernel '" << program.name()
     << "', fingerprint 0x" << std::hex << program.fingerprint() << std::dec
     << " */\n";
  os << "#include <stddef.h>\n";
  if (uses_const) os << "#include <string.h>\n";
  if (uses_libm) os << "#include <math.h>\n";
  os << "\n#define DFGEN_TILE " << kTileSize << "\n";
  if (uses_const) {
    os << R"(
static float dfgen_bits(unsigned int u) {
  float f;
  memcpy(&f, &u, sizeof(f));
  return f;
}
)";
  }
  if (uses_grad) os << kGradHelpers;

  os << "\nvoid " << kJitEntryName
     << "(const float* const* restrict bufs, float* restrict out,\n"
     << "     size_t begin, size_t end) {\n";
  // Hoist the slot loads: read-only inputs, so restrict stays valid even
  // when the resident pool hands two parameter names the same buffer.
  for (std::size_t slot = 0; slot < program.params().size(); ++slot) {
    os << "  const float* restrict " << c_buf(static_cast<std::uint16_t>(slot))
       << " = bufs[" << slot << "]; /* " << program.params()[slot].name
       << " */\n";
  }

  os << "  for (size_t t0 = begin; t0 < end; t0 += DFGEN_TILE) {\n"
     << "    const size_t count =\n"
     << "        end - t0 < DFGEN_TILE ? end - t0 : (size_t)DFGEN_TILE;\n";

  // Tile preamble: every live gradient fills per-tile SoA columns through
  // the row-span helper before the fused element loop runs.
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& in = code[pc];
    if (in.op != Op::grad3d || masks[pc] == 0) continue;
    const std::string g = "g" + std::to_string(pc) + "_";
    std::string args;
    for (int lane = 0; lane < 3; ++lane) {
      if (masks[pc] & (1u << lane)) {
        os << "    float " << g << lane << "[DFGEN_TILE];\n";
        args += ", " + g + std::to_string(lane);
      } else {
        args += ", (float*)0";
      }
    }
    os << "    {\n"
       << "      const float* dims = " << c_buf(in.args[1]) << ";\n"
       << "      dfgen_grad_rows(" << c_buf(in.args[0]) << ", "
       << c_buf(in.args[2]) << ", " << c_buf(in.args[3]) << ", "
       << c_buf(in.args[4]) << ",\n"
       << "                      (size_t)dims[0], (size_t)dims[1], "
       << "(size_t)dims[2],\n"
       << "                      t0, count" << args << ");\n"
       << "    }\n";
  }

  os << "    for (size_t e = 0; e < count; ++e) {\n"
     << "      const size_t gid = t0 + e;\n";
  // Declare every (register, lane) local some live definition writes.
  // Registers are reused after coalescing, so declarations precede all
  // statements instead of annotating first definitions.
  std::set<std::pair<std::uint16_t, int>> locals;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    if (!op_defines_register(code[pc].op)) continue;
    for (int lane = 0; lane < 4; ++lane) {
      if (masks[pc] & (1u << lane)) locals.insert({code[pc].dst, lane});
    }
  }
  for (const auto& [r, lane] : locals) {
    os << "      float " << c_lane(r, lane) << ";\n";
  }
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& in = code[pc];
    if (masks[pc] == 0 && op_defines_register(in.op)) continue;
    if (in.op == Op::grad3d) {
      const std::string g = "g" + std::to_string(pc) + "_";
      for (int lane = 0; lane < 3; ++lane) {
        if (masks[pc] & (1u << lane)) {
          os << "      " << c_lane(in.dst, lane) << " = " << g << lane
             << "[e];\n";
        }
      }
      if (masks[pc] & 0x8) {
        os << "      " << c_lane(in.dst, 3) << " = 0.0f;\n";
      }
      continue;
    }
    emit_c_instr(os, in, masks[pc]);
  }
  os << "    }\n  }\n}\n";
  return os.str();
}

}  // namespace dfg::kernels
