// Kernel layer: OpenCL-C source rendering.
//
// Renders a bytecode Program as the equivalent OpenCL C kernel source. The
// paper's framework generates real OpenCL C at runtime; our VM executes
// bytecode instead, and this printer recovers the human-inspectable source
// view — used by documentation, diagnostics, tests and the Engine's report
// (the analogue of the paper's optional script dump).
#pragma once

#include <string>

#include "kernels/program.hpp"

namespace dfg::kernels {

/// Full kernel source: primitive device-function preamble (each primitive
/// used, written once) followed by the __kernel function body with one
/// statement per instruction.
std::string to_opencl_source(const Program& program);

/// Just the kernel body (no device-function preamble); used by tests.
std::string to_opencl_body(const Program& program);

}  // namespace dfg::kernels
