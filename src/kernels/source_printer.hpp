// Kernel layer: OpenCL-C source rendering.
//
// Renders a bytecode Program as the equivalent OpenCL C kernel source. The
// paper's framework generates real OpenCL C at runtime; our VM executes
// bytecode instead, and this printer recovers the human-inspectable source
// view — used by documentation, diagnostics, tests and the Engine's report
// (the analogue of the paper's optional script dump).
#pragma once

#include <string>

#include "kernels/program.hpp"

namespace dfg::kernels {

/// Full kernel source: primitive device-function preamble (each primitive
/// used, written once) followed by the __kernel function body with one
/// statement per instruction.
std::string to_opencl_source(const Program& program);

/// Just the kernel body (no device-function preamble); used by tests.
std::string to_opencl_body(const Program& program);

/// Name of the entry point to_c_source exports.
inline constexpr const char* kJitEntryName = "dfgen_kernel";

/// The same program as a self-contained C translation unit for the jit
/// backend: tile-loop outer structure (kernels::kTileSize), grad3d hoisted
/// to per-tile SoA column arrays filled by the VM's row-wise spans, and
/// every remaining instruction fused into one per-element loop over scalar
/// locals (live lanes only, from live_lane_masks). Exported entry point:
///
///   void dfgen_kernel(const float* const* bufs, float* out,
///                     size_t begin, size_t end);
///
/// `bufs` holds one pointer per buffer parameter, in slot order; `out` is
/// indexed with absolute global ids times out_stride(). Arithmetic is
/// operand-for-operand what the interpreters perform (same libm entry
/// points, same evaluation order, same boundary peeling), so the compiled
/// object is bit-identical to run()/run_scalar() — the fuzzer enforces
/// this across backends.
std::string to_c_source(const Program& program);

}  // namespace dfg::kernels
