// Kernel layer: the derived-field primitive library.
//
// The paper's building blocks are "small OpenCL source functions that are
// written once and shared by all execution strategies", each with "minimal
// metadata to describe global memory requirements and the return type".
// This registry is that library: every dataflow filter kind is described by
// a PrimitiveInfo (arity, component shape, flop cost, and the OpenCL-C
// device-function source kept for documentation and the source printer),
// and make_standalone_program() materialises the one-primitive kernel used
// by the roundtrip and staged strategies. The fusion strategy emits the
// same primitives inline via the KernelGenerator — the primitive
// definitions themselves are strategy-independent, as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/program.hpp"

namespace dfg::kernels {

struct PrimitiveInfo {
  /// Dataflow filter kind ("add", "grad3d", "decompose", ...).
  std::string name;
  /// Number of dataflow inputs (0 for const_fill).
  int arity = 0;
  /// Components of the result per element: 1 scalar, 3 vector.
  int result_components = 1;
  /// Required components of each input (1 or 3); empty entries default to 1.
  std::vector<int> input_components;
  /// The OpenCL-C device function implementing the primitive, written once
  /// and reused by every strategy (embedded in generated kernel sources).
  std::string ocl_source;
};

/// All registered primitives, in a stable order.
const std::vector<PrimitiveInfo>& all_primitives();

/// Looks up a primitive by dataflow kind; nullptr when unknown.
const PrimitiveInfo* find_primitive(const std::string& name);

/// True for the six comparison kinds ("cmp_gt", ...).
bool is_comparison(const std::string& name);

/// Bytecode opcode implementing a two-input primitive ("add" -> Op::add).
/// Throws KernelError for kinds that are not binary.
Op binary_opcode_for(const std::string& kind);

/// Bytecode opcode implementing a one-input primitive ("sqrt" -> Op::sqrt).
/// Throws KernelError for kinds that are not unary.
Op unary_opcode_for(const std::string& kind);

/// Builds the standalone one-primitive kernel for the staged/roundtrip
/// strategies. `component` selects the lane for "decompose"; `value` is the
/// immediate for "const_fill". Unknown kinds throw KernelError.
Program make_standalone_program(const std::string& kind, int component = 0,
                                float value = 0.0f);

}  // namespace dfg::kernels
