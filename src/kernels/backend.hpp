// Kernel layer: pluggable execution backends.
//
// A vcl::Device names an ExecutionBackend that realizes kernel launches on
// the host: the tiled bytecode VM (VmBackend, the default), the
// element-at-a-time interpreter (ScalarBackend, the bit-exact oracle), or
// native code generation (JitBackend: emit a C translation unit for the
// fused program, compile it with the system toolchain, dlopen the entry
// point — the paper's PyOpenCL runtime-codegen story). A backend only
// changes *how* a launch body computes: command streams, watchdogs, fault
// injection, transfer integrity, metrics and the fallback ladder are
// untouched, and every backend produces bit-identical results.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "kernels/program.hpp"
#include "kernels/vm.hpp"

namespace dfg::kernels {

enum class BackendKind {
  scalar,       ///< element-at-a-time interpreter (differential oracle)
  vm,           ///< tiled bytecode VM (the default)
  jit,          ///< native codegen; degrades to the VM per program
  auto_select,  ///< jit when the toolchain works, silently vm otherwise
};

/// Stable lower-case name ("scalar", "vm", "jit", "auto").
const char* backend_name(BackendKind kind);

/// Parses a DFGEN_BACKEND value; nullopt for anything unrecognised.
std::optional<BackendKind> parse_backend(std::string_view name);

/// One program prepared for execution by a backend. run() has kernels::run
/// semantics (absolute global ids, disjoint [begin, end) chunks) and is
/// safe to call from concurrent worker chunks; `program` must be the same
/// program the kernel was prepared from.
class CompiledKernel {
 public:
  virtual ~CompiledKernel() = default;
  /// The backend that actually realizes this kernel — `vm` when a jit
  /// prepare degraded to the interpreter.
  virtual BackendKind kind() const = 0;
  virtual void run(const Program& program,
                   std::span<const BufferBinding> inputs, float* out,
                   std::size_t out_elements, std::size_t begin,
                   std::size_t end) const = 0;
};

/// Cost-model efficiency factors per backend family. Interpreted dispatch
/// matches vcl::CostModel::kComputeEfficiency (0.35), keeping historical
/// simulated timings for backend-unaware code; compiled kernels are
/// credited with twice the derated rate — intermediates stay in machine
/// registers instead of making one pass through L1 per instruction.
inline constexpr double kInterpretedEfficiency = 0.35;
inline constexpr double kCompiledEfficiency = 0.70;

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;
  virtual BackendKind kind() const = 0;
  const char* name() const { return backend_name(kind()); }
  /// Fraction of the device's peak flop rate the cost model credits
  /// kernels launched under this backend.
  virtual double compute_efficiency() const { return kInterpretedEfficiency; }
  /// Returns an executable for `program`. Never null, and never throws for
  /// toolchain problems: the jit backend falls back to the VM per program
  /// (counted in dfgen_jit_fallbacks_total) instead of failing the launch.
  virtual std::shared_ptr<const CompiledKernel> prepare(
      const Program& program) = 0;
};

/// The process-wide instance of each backend (stateless or internally
/// synchronized; shared freely across devices and threads).
std::shared_ptr<ExecutionBackend> backend_for(BackendKind kind);

/// The process-default backend: DFGEN_BACKEND={scalar,vm,jit,auto}, vm
/// when unset or unrecognised. Re-read on every call so a harness can flip
/// the variable between evaluations.
BackendKind default_backend_kind();

}  // namespace dfg::kernels
