// Dataflow layer: initialized network.
//
// Network-initialization per the paper's §III-B2: a topological sort
// establishes filter precedence, and reference counts let execution
// strategies reuse intermediate results and release device buffers as soon
// as their last consumer has run (reducing memory overhead).
#pragma once

#include <cstdint>
#include <vector>

#include "dataflow/spec.hpp"

namespace dfg::dataflow {

class Network {
 public:
  /// Takes ownership of a finished spec. Throws NetworkError when the spec
  /// has no output or contains a dependency cycle (possible only for
  /// hand-built specs; the builder produces DAGs by construction).
  explicit Network(NetworkSpec spec);

  const NetworkSpec& spec() const { return spec_; }

  /// All node ids in dependency order (producers before consumers).
  const std::vector<int>& topo_order() const { return topo_order_; }

  /// Number of consumers of a node's value, counting duplicate uses
  /// (u appears twice in u*u) plus one if the node is the network output.
  /// Strategies copy these counts and decrement as consumers execute.
  int use_count(int id) const { return use_counts_[id]; }
  const std::vector<int>& use_counts() const { return use_counts_; }

  int output_id() const { return spec_.output_id(); }

  /// Canonical structural fingerprint of the network: an FNV-1a hash over
  /// every spec node's identity-relevant fields (type, kind, bound field
  /// name, constant bits, component selections, input wiring, label) and
  /// the output marker. Two networks share a fingerprint exactly when the
  /// kernel generator would produce identical programs for them, so it
  /// serves as the fused-program cache key. Computed once at construction.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Per-node *subtree* fingerprint: names the canonical value node `id`
  /// computes given the same bound inputs (see subtree_fingerprints below).
  /// Computed once at construction alongside fingerprint().
  std::uint64_t subtree_fingerprint(int id) const {
    return subtree_fingerprints_[static_cast<std::size_t>(id)];
  }
  const std::vector<std::uint64_t>& subtree_fingerprints() const {
    return subtree_fingerprints_;
  }

 private:
  NetworkSpec spec_;
  std::vector<int> topo_order_;
  std::vector<int> use_counts_;
  std::uint64_t fingerprint_ = 0;
  std::vector<std::uint64_t> subtree_fingerprints_;
};

/// Per-node subtree fingerprints of a spec, indexed by node id: an FNV-1a
/// hash over each node's identity-relevant fields (type, kind, bound field
/// name, constant bits, component selection, component count) combined
/// with its inputs' subtree fingerprints in argument order. Unlike the
/// whole-network fingerprint, labels are deliberately excluded — two
/// differently named nodes computing the same value share a subtree
/// fingerprint, which is exactly what cross-request memoization keys on:
/// two networks containing equal subtree fingerprints compute the same
/// value at those roots whenever the same host arrays are bound to the
/// subtree's field leaves. Node ids are construction order (producers
/// precede consumers), so a single forward pass suffices.
std::vector<std::uint64_t> subtree_fingerprints(const NetworkSpec& spec);

}  // namespace dfg::dataflow
