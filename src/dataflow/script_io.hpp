// Dataflow layer: network-definition script serialisation.
//
// NetworkSpec::to_script dumps the create-and-connect API calls that
// rebuild a spec (the paper's inspectable Python script); this module
// parses that format back, so specs round-trip through plain text — a host
// can persist a user's derived-field definition, audit it, edit it by
// hand, and reload it without the expression front-end.
#pragma once

#include <string_view>

#include "dataflow/spec.hpp"

namespace dfg::dataflow {

/// Parses a network-definition script produced by NetworkSpec::to_script
/// (or hand-written in the same format):
///
///   net = NetworkSpec()
///   n0 = net.add_field_source("u")        # u
///   n1 = net.add_constant(0.5)            # t0
///   n2 = net.add_filter("mult", [n0, n1]) # scaled
///   n3 = net.add_filter("decompose", [n2], component=1)
///   net.set_output(n2)
///
/// Node labels come from the trailing comments when present. Throws
/// NetworkError with the offending line on malformed input.
NetworkSpec parse_script(std::string_view script, SpecOptions options = {});

}  // namespace dfg::dataflow
