// Dataflow layer: Graphviz DOT rendering.
//
// Renders a network specification as the kind of dataflow diagram the
// paper's Figure 4 shows for the Q-criterion: sources as ellipses
// (field arrays and constants), filters as boxes, edges in execution
// direction, and the output node highlighted.
#pragma once

#include <string>

#include "dataflow/spec.hpp"

namespace dfg::dataflow {

struct DotOptions {
  /// Graph name emitted in the digraph header.
  std::string graph_name = "dataflow";
  /// Label edges with the argument position for filters taking more than
  /// one input (distinguishes a-b from b-a at a glance).
  bool label_argument_positions = true;
  /// Append each node's subtree fingerprint (short hex) to its label, so
  /// subtrees shared across networks are visually identifiable — two nodes
  /// with the same #tag compute the same value given the same bound
  /// arrays (the cross-request memoizer's unit of work).
  bool subtree_fingerprints = true;
};

/// Returns the DOT source for the network (pipe through `dot -Tsvg`).
std::string to_dot(const NetworkSpec& spec, const DotOptions& options = {});

}  // namespace dfg::dataflow
