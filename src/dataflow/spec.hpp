// Dataflow layer: network specification.
//
// The "create and connect" network-definition API of the paper's §III-B.
// A NetworkSpec is a DAG of sources (named field arrays and constants) and
// filters (derived-field primitives). The expression front-end builds specs
// through this API; host applications may also use it directly. The spec
// can dump itself as a script outlining all API calls — the counterpart of
// the paper's optional Python script "which can be inspected by the user".
//
// Deduplication lives here: repeated constants reduce to single source
// nodes, and (optionally) a limited common-subexpression elimination folds
// structurally identical filter invocations, exactly as described for the
// paper's parser transformations.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace dfg::dataflow {

enum class NodeType { field_source, constant, filter };

struct SpecNode {
  int id = -1;
  NodeType type = NodeType::filter;
  /// Filter kind ("add", "grad3d", "decompose", ...); "field" / "const" for
  /// sources.
  std::string kind;
  /// Bound host-array name for field sources.
  std::string field_name;
  /// Literal value for constant sources.
  double const_value = 0.0;
  /// Selected lane for "decompose" filters.
  int component = 0;
  /// Producer node ids, in argument order.
  std::vector<int> inputs;
  /// Components of the value this node produces (1 scalar, 3 vector).
  int components = 1;
  /// User-visible name: the assignment target when the user named this
  /// value, otherwise a generated temporary name.
  std::string label;
};

struct SpecOptions {
  /// Fold structurally identical filter invocations (limited CSE).
  bool cse = true;
  /// Reduce repeated constants to a single source node.
  bool dedup_constants = true;
  /// Treat commutative filters (add, mult, min, max) as order-insensitive
  /// when folding. Off by default to mirror the paper's "limited" CSE; the
  /// ablation benchmark measures what it buys.
  bool canonicalize_commutative = false;
  /// Drop nodes unreachable from the network output after translation
  /// (statements assigned but never used). An extension beyond the paper,
  /// off by default: the paper's framework computes every statement the
  /// user wrote.
  bool prune_unreachable = false;
};

class NetworkSpec {
 public:
  explicit NetworkSpec(SpecOptions options = {});

  /// Adds (or returns the existing) source node bound to a named host array.
  int add_field_source(const std::string& name);

  /// Adds a constant source; deduplicated when options.dedup_constants.
  int add_constant(double value);

  /// Adds a filter invocation. Validates the kind against the primitive
  /// registry, the arity, and the component shape of every input. Returns
  /// an existing node id instead when CSE folds the invocation.
  /// `component` is only meaningful for "decompose".
  int add_filter(const std::string& kind, const std::vector<int>& inputs,
                 int component = 0);

  /// Marks the node whose value the network produces.
  void set_output(int id);
  /// Redirects filter `id`'s `arg`-th input edge to `new_input`, keeping
  /// every node id stable (no compaction — downstream consumers resolve
  /// pipeline stages and materialised-parameter names by node id). The new
  /// producer must precede the consumer (ids are construction order, so
  /// this preserves acyclicity) and match the displaced input's component
  /// count. Nodes orphaned by rewiring are left in place; the bytecode
  /// optimizer's dead-code elimination discards their instructions. This
  /// is the mutation the pre-codegen rewrite pass (kernels::rewrite_network)
  /// is built on.
  void rewire_input(int id, std::size_t arg, int new_input);
  /// Associates a user-facing name with a node (assignment statements).
  void set_label(int id, const std::string& label);

  const std::vector<SpecNode>& nodes() const { return nodes_; }
  const SpecNode& node(int id) const;
  int output_id() const { return output_id_; }
  const SpecOptions& options() const { return options_; }

  std::size_t filter_count() const;
  std::size_t source_count() const;

  /// Names of all field sources, in first-use order.
  std::vector<std::string> field_names() const;

  /// Dumps the sequence of API calls that rebuilds this spec (a Python-like
  /// script, inspectable by the user).
  std::string to_script() const;

 private:
  int push_node(SpecNode node);
  void check_id(int id, const char* context) const;

  SpecOptions options_;
  std::vector<SpecNode> nodes_;
  int output_id_ = -1;
  int next_temp_ = 0;
  std::map<std::string, int> field_index_;
  std::map<double, int> constant_index_;
  std::map<std::string, int> cse_index_;
};

/// Returns a copy of `spec` without the nodes unreachable from its output
/// (dead-code elimination over the dataflow DAG). Labels, options and the
/// output marker are preserved; node ids are compacted. Requires the spec
/// to have an output. Rebuilt through the public API, so all invariants
/// re-validate.
NetworkSpec prune_unreachable(const NetworkSpec& spec);

}  // namespace dfg::dataflow
