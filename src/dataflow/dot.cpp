#include "dataflow/dot.hpp"

#include <cstdio>
#include <sstream>

#include "dataflow/network.hpp"
#include "support/string_util.hpp"

namespace dfg::dataflow {

namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string node_label(const SpecNode& node) {
  switch (node.type) {
    case NodeType::field_source:
      return node.field_name;
    case NodeType::constant:
      return support::format_float(node.const_value);
    case NodeType::filter:
      if (node.kind == "decompose") {
        return "decompose [" + std::to_string(node.component) + "]\\n" +
               node.label;
      }
      return node.kind + "\\n" + node.label;
  }
  return "?";
}

/// Short hex tag of a subtree fingerprint (low 32 bits — plenty to make
/// shared subtrees visually matchable in a rendered diagram).
std::string short_hex(std::uint64_t fp) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x",
                static_cast<unsigned>(fp & 0xffffffffu));
  return buf;
}

}  // namespace

std::string to_dot(const NetworkSpec& spec, const DotOptions& options) {
  std::vector<std::uint64_t> fps;
  if (options.subtree_fingerprints) fps = subtree_fingerprints(spec);
  std::ostringstream os;
  os << "digraph \"" << escape(options.graph_name) << "\" {\n";
  os << "  rankdir=TB;\n";
  os << "  node [fontsize=10];\n";
  for (const SpecNode& node : spec.nodes()) {
    std::string label = node_label(node);
    if (options.subtree_fingerprints) {
      label += "\\n#" + short_hex(fps[static_cast<std::size_t>(node.id)]);
    }
    os << "  n" << node.id << " [label=\"" << escape(label) << "\"";
    switch (node.type) {
      case NodeType::field_source:
        os << ", shape=ellipse, style=filled, fillcolor=lightblue";
        break;
      case NodeType::constant:
        os << ", shape=ellipse, style=filled, fillcolor=lightgray";
        break;
      case NodeType::filter:
        os << ", shape=box";
        break;
    }
    if (node.id == spec.output_id()) {
      os << ", penwidth=2, color=red";
    }
    os << "];\n";
  }
  for (const SpecNode& node : spec.nodes()) {
    for (std::size_t arg = 0; arg < node.inputs.size(); ++arg) {
      os << "  n" << node.inputs[arg] << " -> n" << node.id;
      if (options.label_argument_positions && node.inputs.size() > 1) {
        os << " [label=\"" << arg << "\", fontsize=8]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace dfg::dataflow
