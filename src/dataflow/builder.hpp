// Dataflow layer: AST -> network specification translation.
//
// The parse-tree traversal of the paper's §III-A: filter invocations get
// generic temporary names as encountered, assignment statements map names
// onto their defining sub-trees, binary math lowers to the equivalent
// filter kinds, and bracket indexing lowers to "decompose" filters. The
// spec's constant deduplication and limited CSE apply during construction.
#pragma once

#include <string_view>

#include "dataflow/spec.hpp"
#include "expr/ast.hpp"

namespace dfg::dataflow {

/// Translates a parsed expression script to a network spec. The last
/// statement's value becomes the network output. Unknown function names,
/// arity mismatches and component-shape violations throw NetworkError with
/// the offending name in the message.
NetworkSpec build_network(const expr::Script& script, SpecOptions options = {});

/// Convenience: parse + build in one call.
NetworkSpec build_network(std::string_view source, SpecOptions options = {});

}  // namespace dfg::dataflow
