#include "dataflow/builder.hpp"

#include <map>
#include <string>

#include "expr/parser.hpp"
#include "kernels/primitives.hpp"

namespace dfg::dataflow {

namespace {

const char* binary_filter_kind(expr::BinaryOp op) {
  switch (op) {
    case expr::BinaryOp::add:
      return "add";
    case expr::BinaryOp::sub:
      return "sub";
    case expr::BinaryOp::mul:
      return "mult";
    case expr::BinaryOp::div:
      return "div";
    case expr::BinaryOp::greater:
      return "cmp_gt";
    case expr::BinaryOp::less:
      return "cmp_lt";
    case expr::BinaryOp::greater_equal:
      return "cmp_ge";
    case expr::BinaryOp::less_equal:
      return "cmp_le";
    case expr::BinaryOp::equal:
      return "cmp_eq";
    case expr::BinaryOp::not_equal:
      return "cmp_ne";
  }
  return "?";
}

class Translator {
 public:
  explicit Translator(SpecOptions options) : spec_(options) {}

  NetworkSpec run(const expr::Script& script) {
    int last = -1;
    for (const expr::Statement& stmt : script.statements) {
      const int id = translate(*stmt.value);
      // Assignment statements map user names onto the generically named
      // invocation nodes produced by the traversal.
      names_[stmt.target] = id;
      spec_.set_label(id, stmt.target);
      last = id;
    }
    spec_.set_output(last);
    return std::move(spec_);
  }

 private:
  int translate(const expr::Node& node) {
    switch (node.kind) {
      case expr::NodeKind::number:
        return spec_.add_constant(
            static_cast<const expr::NumberNode&>(node).value);
      case expr::NodeKind::identifier: {
        const auto& ident = static_cast<const expr::IdentifierNode&>(node);
        const auto it = names_.find(ident.name);
        if (it != names_.end()) return it->second;
        // Unassigned identifiers are host-bound field arrays.
        return spec_.add_field_source(ident.name);
      }
      case expr::NodeKind::binary: {
        const auto& bin = static_cast<const expr::BinaryNode&>(node);
        const int lhs = translate(*bin.lhs);
        const int rhs = translate(*bin.rhs);
        return spec_.add_filter(binary_filter_kind(bin.op), {lhs, rhs});
      }
      case expr::NodeKind::unary_minus: {
        const auto& u = static_cast<const expr::UnaryMinusNode&>(node);
        return spec_.add_filter("neg", {translate(*u.operand)});
      }
      case expr::NodeKind::index: {
        const auto& idx = static_cast<const expr::IndexNode&>(node);
        return spec_.add_filter("decompose", {translate(*idx.base)},
                                idx.component);
      }
      case expr::NodeKind::conditional: {
        const auto& c = static_cast<const expr::ConditionalNode&>(node);
        const int cond = translate(*c.condition);
        const int then_value = translate(*c.then_value);
        const int else_value = translate(*c.else_value);
        return spec_.add_filter("select", {cond, then_value, else_value});
      }
      case expr::NodeKind::call: {
        const auto& call = static_cast<const expr::CallNode&>(node);
        if (kernels::find_primitive(call.callee) == nullptr) {
          throw NetworkError("unknown function '" + call.callee +
                             "' in expression");
        }
        std::vector<int> inputs;
        inputs.reserve(call.args.size());
        for (const expr::NodePtr& arg : call.args) {
          inputs.push_back(translate(*arg));
        }
        return spec_.add_filter(call.callee, inputs);
      }
    }
    throw NetworkError("unhandled expression node");
  }

  NetworkSpec spec_;
  std::map<std::string, int> names_;
};

}  // namespace

NetworkSpec build_network(const expr::Script& script, SpecOptions options) {
  Translator translator(options);
  NetworkSpec spec = translator.run(script);
  if (options.prune_unreachable) {
    return prune_unreachable(spec);
  }
  return spec;
}

NetworkSpec build_network(std::string_view source, SpecOptions options) {
  return build_network(expr::parse(source), options);
}

}  // namespace dfg::dataflow
