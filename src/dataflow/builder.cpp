#include "dataflow/builder.hpp"

#include <array>
#include <map>
#include <string>
#include <vector>

#include "expr/parser.hpp"
#include "kernels/primitives.hpp"

namespace dfg::dataflow {

namespace {

const char* binary_filter_kind(expr::BinaryOp op) {
  switch (op) {
    case expr::BinaryOp::add:
      return "add";
    case expr::BinaryOp::sub:
      return "sub";
    case expr::BinaryOp::mul:
      return "mult";
    case expr::BinaryOp::div:
      return "div";
    case expr::BinaryOp::greater:
      return "cmp_gt";
    case expr::BinaryOp::less:
      return "cmp_lt";
    case expr::BinaryOp::greater_equal:
      return "cmp_ge";
    case expr::BinaryOp::less_equal:
      return "cmp_le";
    case expr::BinaryOp::equal:
      return "cmp_eq";
    case expr::BinaryOp::not_equal:
      return "cmp_ne";
  }
  return "?";
}

class Translator {
 public:
  explicit Translator(SpecOptions options) : spec_(options) {}

  NetworkSpec run(const expr::Script& script) {
    int last = -1;
    for (const expr::Statement& stmt : script.statements) {
      const int id = translate(*stmt.value);
      // Assignment statements map user names onto the generically named
      // invocation nodes produced by the traversal.
      names_[stmt.target] = id;
      spec_.set_label(id, stmt.target);
      last = id;
    }
    spec_.set_output(last);
    return std::move(spec_);
  }

 private:
  int translate(const expr::Node& node) {
    switch (node.kind) {
      case expr::NodeKind::number:
        return spec_.add_constant(
            static_cast<const expr::NumberNode&>(node).value);
      case expr::NodeKind::identifier: {
        const auto& ident = static_cast<const expr::IdentifierNode&>(node);
        const auto it = names_.find(ident.name);
        if (it != names_.end()) return it->second;
        // Unassigned identifiers are host-bound field arrays.
        return spec_.add_field_source(ident.name);
      }
      case expr::NodeKind::binary: {
        const auto& bin = static_cast<const expr::BinaryNode&>(node);
        const int lhs = translate(*bin.lhs);
        const int rhs = translate(*bin.rhs);
        return spec_.add_filter(binary_filter_kind(bin.op), {lhs, rhs});
      }
      case expr::NodeKind::unary_minus: {
        const auto& u = static_cast<const expr::UnaryMinusNode&>(node);
        return spec_.add_filter("neg", {translate(*u.operand)});
      }
      case expr::NodeKind::index: {
        const auto& idx = static_cast<const expr::IndexNode&>(node);
        return spec_.add_filter("decompose", {translate(*idx.base)},
                                idx.component);
      }
      case expr::NodeKind::conditional: {
        const auto& c = static_cast<const expr::ConditionalNode&>(node);
        const int cond = translate(*c.condition);
        const int then_value = translate(*c.then_value);
        const int else_value = translate(*c.else_value);
        return spec_.add_filter("select", {cond, then_value, else_value});
      }
      case expr::NodeKind::call: {
        const auto& call = static_cast<const expr::CallNode&>(node);
        const int expanded = expand_vector_operator(call);
        if (expanded >= 0) return expanded;
        if (kernels::find_primitive(call.callee) == nullptr) {
          throw NetworkError("unknown function '" + call.callee +
                             "' in expression");
        }
        std::vector<int> inputs;
        inputs.reserve(call.args.size());
        for (const expr::NodePtr& arg : call.args) {
          inputs.push_back(translate(*arg));
        }
        return spec_.add_filter(call.callee, inputs);
      }
    }
    throw NetworkError("unhandled expression node");
  }

  // --- Fluid-dynamics vector-field operators -------------------------------
  //
  // The CFD builtins are translation-time macros over the existing primitive
  // vocabulary: each call expands into grad3d stencils plus scalar
  // arithmetic, so every strategy and backend runs them through machinery it
  // already supports, and the scalar oracle stays the bit-exactness
  // reference with no new per-operator kernels. Gradient nodes are cached
  // per (field, mesh) operand tuple — curl's three components, the tensor
  // invariants and any mix of operators over the same velocity field share
  // exactly three stencils.

  /// d[comp][axis] = d(velocity component comp)/d(axis).
  using VelocityGrads = std::array<std::array<int, 3>, 3>;

  int filt(const char* kind, const std::vector<int>& in, int component = 0) {
    return spec_.add_filter(kind, in, component);
  }
  int cnst(double v) { return spec_.add_constant(v); }
  int add(int a, int b) { return filt("add", {a, b}); }
  int sub(int a, int b) { return filt("sub", {a, b}); }
  int mul(int a, int b) { return filt("mult", {a, b}); }
  int quo(int a, int b) { return filt("div", {a, b}); }
  int sq(int a) { return mul(a, a); }

  int gradient(int field, const std::array<int, 4>& mesh) {
    const std::array<int, 5> key{field, mesh[0], mesh[1], mesh[2], mesh[3]};
    const auto it = gradients_.find(key);
    if (it != gradients_.end()) return it->second;
    const int id =
        filt("grad3d", {field, mesh[0], mesh[1], mesh[2], mesh[3]});
    gradients_[key] = id;
    return id;
  }

  VelocityGrads velocity_grads(const std::array<int, 3>& uvw,
                               const std::array<int, 4>& mesh) {
    VelocityGrads d;
    for (int comp = 0; comp < 3; ++comp) {
      const int grad = gradient(uvw[static_cast<std::size_t>(comp)], mesh);
      for (int axis = 0; axis < 3; ++axis) {
        d[static_cast<std::size_t>(comp)][static_cast<std::size_t>(axis)] =
            filt("decompose", {grad}, axis);
      }
    }
    return d;
  }

  /// Vorticity vector components (curl of the velocity field).
  std::array<int, 3> curl_components(const VelocityGrads& d) {
    return {sub(d[2][1], d[1][2]),   // dw/dy - dv/dz
            sub(d[0][2], d[2][0]),   // du/dz - dw/dx
            sub(d[1][0], d[0][1])};  // dv/dx - du/dy
  }

  /// |curl|^2 = wx^2 + wy^2 + wz^2.
  int curl_norm_sq(const VelocityGrads& d) {
    const std::array<int, 3> w = curl_components(d);
    return add(add(sq(w[0]), sq(w[1])), sq(w[2]));
  }

  static bool is_vector_operator(const std::string& name, std::size_t argc) {
    // "div" keeps its 2-argument scalar-division meaning and only reads as
    // divergence at the 7-argument vector signature.
    if (name == "div") return argc == 7;
    return name == "divergence" || name == "curl" ||
           name == "vorticity_mag" || name == "enstrophy" ||
           name == "helicity" || name == "qcriterion" || name == "lambda2";
  }

  /// Expands a CFD operator call into grad3d + arithmetic nodes; returns -1
  /// when `call` is not one of the vector-field builtins. They all share
  /// the signature op(u, v, w, dims, x, y, z): three velocity components
  /// followed by the mesh operands grad3d takes.
  int expand_vector_operator(const expr::CallNode& call) {
    if (!is_vector_operator(call.callee, call.args.size())) return -1;
    if (call.args.size() != 7) {
      throw NetworkError("operator '" + call.callee +
                         "' expects 7 arguments: u, v, w, dims, x, y, z");
    }
    std::array<int, 3> uvw;
    for (std::size_t i = 0; i < 3; ++i) uvw[i] = translate(*call.args[i]);
    std::array<int, 4> mesh;
    for (std::size_t i = 0; i < 4; ++i) {
      mesh[i] = translate(*call.args[i + 3]);
    }
    const VelocityGrads d = velocity_grads(uvw, mesh);

    if (call.callee == "divergence" || call.callee == "div") {
      return add(add(d[0][0], d[1][1]), d[2][2]);
    }
    if (call.callee == "curl") {
      const std::array<int, 3> w = curl_components(d);
      return filt("pack3", {w[0], w[1], w[2]});
    }
    if (call.callee == "vorticity_mag") {
      return filt("sqrt", {curl_norm_sq(d)});
    }
    if (call.callee == "enstrophy") {
      return mul(cnst(0.5), curl_norm_sq(d));
    }
    if (call.callee == "helicity") {
      const std::array<int, 3> w = curl_components(d);
      return add(add(mul(uvw[0], w[0]), mul(uvw[1], w[1])),
                 mul(uvw[2], w[2]));
    }
    if (call.callee == "qcriterion") return q_criterion(d);
    return lambda2(d);
  }

  /// Strain-rate / rotation decomposition entries shared by Q and lambda2:
  /// S = 0.5(J + J^T), Omega = 0.5(J - J^T) for the velocity Jacobian J.
  struct TensorParts {
    int s11, s22, s33, s12, s13, s23;
    int o12, o13, o23;
  };

  TensorParts tensor_parts(const VelocityGrads& d) {
    const int half = cnst(0.5);
    TensorParts t;
    t.s11 = d[0][0];
    t.s22 = d[1][1];
    t.s33 = d[2][2];
    t.s12 = mul(half, add(d[0][1], d[1][0]));
    t.s13 = mul(half, add(d[0][2], d[2][0]));
    t.s23 = mul(half, add(d[1][2], d[2][1]));
    t.o12 = mul(half, sub(d[0][1], d[1][0]));
    t.o13 = mul(half, sub(d[0][2], d[2][0]));
    t.o23 = mul(half, sub(d[1][2], d[2][1]));
    return t;
  }

  /// Q = 0.5 (||Omega||^2 - ||S||^2), the second invariant of the velocity
  /// Jacobian — the paper's flagship derived field, now as one builtin.
  int q_criterion(const VelocityGrads& d) {
    const TensorParts t = tensor_parts(d);
    const int two = cnst(2.0);
    const int s_norm =
        add(add(add(sq(t.s11), sq(t.s22)), sq(t.s33)),
            mul(two, add(add(sq(t.s12), sq(t.s13)), sq(t.s23))));
    const int o_norm = mul(two, add(add(sq(t.o12), sq(t.o13)), sq(t.o23)));
    return mul(cnst(0.5), sub(o_norm, s_norm));
  }

  /// lambda2 vortex criterion: the middle eigenvalue of A = S^2 + Omega^2
  /// (symmetric), via the closed-form trigonometric eigensolve. Every step
  /// is ordinary float arithmetic on scalar nodes, so all backends compute
  /// it identically; the isotropic case (p2 == 0, A = qI) is guarded by a
  /// select whose dead branch may divide by zero without being observed.
  int lambda2(const VelocityGrads& d) {
    const TensorParts t = tensor_parts(d);
    // A = S^2 + Omega^2 with S symmetric and Omega antisymmetric.
    const int a11 = sub(add(add(sq(t.s11), sq(t.s12)), sq(t.s13)),
                        add(sq(t.o12), sq(t.o13)));
    const int a22 = sub(add(add(sq(t.s12), sq(t.s22)), sq(t.s23)),
                        add(sq(t.o12), sq(t.o23)));
    const int a33 = sub(add(add(sq(t.s13), sq(t.s23)), sq(t.s33)),
                        add(sq(t.o13), sq(t.o23)));
    const int a12 = sub(add(add(mul(t.s11, t.s12), mul(t.s12, t.s22)),
                            mul(t.s13, t.s23)),
                        mul(t.o13, t.o23));
    const int a13 = add(add(add(mul(t.s11, t.s13), mul(t.s12, t.s23)),
                            mul(t.s13, t.s33)),
                        mul(t.o12, t.o23));
    const int a23 = sub(add(add(mul(t.s12, t.s13), mul(t.s22, t.s23)),
                            mul(t.s23, t.s33)),
                        mul(t.o12, t.o13));
    // Trigonometric eigensolve for a symmetric 3x3 matrix: q = tr(A)/3,
    // p measures the deviatoric magnitude, r = det((A - qI)/p)/2 lands in
    // [-1, 1] up to rounding (clamped), and the eigenvalues are
    // q + 2p cos(phi + 2k*pi/3).
    const int q = quo(add(add(a11, a22), a33), cnst(3.0));
    const int p1 = add(add(sq(a12), sq(a13)), sq(a23));
    const int p2 = add(add(add(sq(sub(a11, q)), sq(sub(a22, q))),
                           sq(sub(a33, q))),
                       mul(cnst(2.0), p1));
    const int p = filt("sqrt", {quo(p2, cnst(6.0))});
    const int b11 = quo(sub(a11, q), p);
    const int b22 = quo(sub(a22, q), p);
    const int b33 = quo(sub(a33, q), p);
    const int b12 = quo(a12, p);
    const int b13 = quo(a13, p);
    const int b23 = quo(a23, p);
    const int detb = add(sub(mul(b11, sub(mul(b22, b33), sq(b23))),
                             mul(b12, sub(mul(b12, b33), mul(b23, b13)))),
                         mul(b13, sub(mul(b12, b23), mul(b22, b13))));
    const int r = filt("max", {cnst(-1.0),
                               filt("min", {cnst(1.0), mul(cnst(0.5), detb)})});
    const int phi = quo(filt("acos", {r}), cnst(3.0));
    const int two_p = mul(cnst(2.0), p);
    const int eig1 = add(q, mul(two_p, filt("cos", {phi})));
    const int eig3 =
        add(q, mul(two_p, filt("cos", {add(phi, cnst(2.0943951023931953))})));
    const int mid = sub(sub(mul(cnst(3.0), q), eig1), eig3);
    // Isotropic A (all off-diagonals zero, equal diagonal): every
    // eigenvalue is q and the general branch divides by p = 0.
    const int isotropic = filt("cmp_eq", {p2, cnst(0.0)});
    return filt("select", {isotropic, q, mid});
  }

  NetworkSpec spec_;
  std::map<std::string, int> names_;
  std::map<std::array<int, 5>, int> gradients_;
};

}  // namespace

NetworkSpec build_network(const expr::Script& script, SpecOptions options) {
  Translator translator(options);
  NetworkSpec spec = translator.run(script);
  if (options.prune_unreachable) {
    return prune_unreachable(spec);
  }
  return spec;
}

NetworkSpec build_network(std::string_view source, SpecOptions options) {
  return build_network(expr::parse(source), options);
}

}  // namespace dfg::dataflow
