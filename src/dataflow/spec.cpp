#include "dataflow/spec.hpp"

#include <algorithm>
#include <sstream>

#include "kernels/primitives.hpp"
#include "support/string_util.hpp"

namespace dfg::dataflow {

NetworkSpec::NetworkSpec(SpecOptions options) : options_(options) {}

int NetworkSpec::push_node(SpecNode node) {
  node.id = static_cast<int>(nodes_.size());
  if (node.label.empty()) {
    node.label = "t" + std::to_string(next_temp_++);
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void NetworkSpec::check_id(int id, const char* context) const {
  if (id < 0 || id >= static_cast<int>(nodes_.size())) {
    throw NetworkError(std::string("invalid node id ") + std::to_string(id) +
                       " " + context);
  }
}

int NetworkSpec::add_field_source(const std::string& name) {
  if (name.empty()) {
    throw NetworkError("field source requires a non-empty name");
  }
  const auto it = field_index_.find(name);
  if (it != field_index_.end()) return it->second;
  SpecNode node;
  node.type = NodeType::field_source;
  node.kind = "field";
  node.field_name = name;
  node.label = name;
  node.components = 1;
  const int id = push_node(std::move(node));
  field_index_[name] = id;
  return id;
}

int NetworkSpec::add_constant(double value) {
  if (options_.dedup_constants) {
    const auto it = constant_index_.find(value);
    if (it != constant_index_.end()) return it->second;
  }
  SpecNode node;
  node.type = NodeType::constant;
  node.kind = "const";
  node.const_value = value;
  node.components = 1;
  const int id = push_node(std::move(node));
  if (options_.dedup_constants) constant_index_[value] = id;
  return id;
}

int NetworkSpec::add_filter(const std::string& kind,
                            const std::vector<int>& inputs, int component) {
  const kernels::PrimitiveInfo* info = kernels::find_primitive(kind);
  if (info == nullptr) {
    throw NetworkError("unknown filter '" + kind + "'");
  }
  if (kind == "const_fill") {
    throw NetworkError(
        "'const_fill' is an execution-strategy kernel, not a network filter; "
        "use add_constant");
  }
  if (static_cast<int>(inputs.size()) != info->arity) {
    throw NetworkError("filter '" + kind + "' expects " +
                       std::to_string(info->arity) + " inputs, got " +
                       std::to_string(inputs.size()));
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    check_id(inputs[i], ("as input to '" + kind + "'").c_str());
    const int want = i < info->input_components.size()
                         ? info->input_components[i]
                         : 1;
    const int have = nodes_[inputs[i]].components;
    if (have != want) {
      throw NetworkError("filter '" + kind + "' input " + std::to_string(i) +
                         " ('" + nodes_[inputs[i]].label + "') has " +
                         std::to_string(have) + " component(s), needs " +
                         std::to_string(want));
    }
  }
  if (kind == "decompose" && (component < 0 || component > 2)) {
    throw NetworkError("decompose component " + std::to_string(component) +
                       " out of range [0, 2]");
  }
  if (kind == "grad3d") {
    // The gradient's mesh operands (dims and the coordinate arrays) must be
    // host-bound field arrays. The *field* operand may be any scalar value:
    // staged and roundtrip stencil its whole buffer naturally, and the
    // fusion strategy materialises computed fields via its partitioned
    // pipeline (one fused kernel per materialisation barrier).
    for (std::size_t i = 1; i < inputs.size(); ++i) {
      if (nodes_[inputs[i]].type != NodeType::field_source) {
        throw NetworkError("grad3d input " + std::to_string(i) + " ('" +
                           nodes_[inputs[i]].label +
                           "') must be a host-bound mesh array");
      }
    }
    if (nodes_[inputs[0]].type == NodeType::constant) {
      throw NetworkError(
          "grad3d of a constant is identically zero; refusing the "
          "degenerate network");
    }
  }

  std::vector<int> key_inputs = inputs;
  const bool commutative =
      kind == "add" || kind == "mult" || kind == "min" || kind == "max";
  if (options_.canonicalize_commutative && commutative) {
    std::sort(key_inputs.begin(), key_inputs.end());
  }
  std::string key;
  if (options_.cse) {
    std::ostringstream os;
    os << kind << '/' << component;
    for (int id : key_inputs) os << ':' << id;
    key = os.str();
    const auto it = cse_index_.find(key);
    if (it != cse_index_.end()) return it->second;
  }

  SpecNode node;
  node.type = NodeType::filter;
  node.kind = kind;
  node.inputs = inputs;
  node.component = component;
  node.components = info->result_components;
  const int id = push_node(std::move(node));
  if (options_.cse) cse_index_[key] = id;
  return id;
}

void NetworkSpec::set_output(int id) {
  check_id(id, "as network output");
  if (nodes_[id].components != 1) {
    throw NetworkError("network output '" + nodes_[id].label +
                       "' must be scalar; decompose vector values first");
  }
  output_id_ = id;
}

void NetworkSpec::rewire_input(int id, std::size_t arg, int new_input) {
  check_id(id, "in rewire_input");
  check_id(new_input, "as rewired input");
  SpecNode& node = nodes_[id];
  if (node.type != NodeType::filter) {
    throw NetworkError("rewire_input: node '" + node.label +
                       "' is not a filter");
  }
  if (arg >= node.inputs.size()) {
    throw NetworkError("rewire_input: '" + node.kind + "' has no argument " +
                       std::to_string(arg));
  }
  if (new_input >= id) {
    throw NetworkError(
        "rewire_input: producer must precede consumer (rewiring node " +
        std::to_string(id) + " to " + std::to_string(new_input) +
        " would break construction order)");
  }
  const SpecNode& incoming = nodes_[new_input];
  const SpecNode& displaced = nodes_[node.inputs[arg]];
  if (incoming.components != displaced.components) {
    throw NetworkError("rewire_input: '" + incoming.label + "' produces " +
                       std::to_string(incoming.components) +
                       " components where '" + displaced.label +
                       "' produced " + std::to_string(displaced.components));
  }
  node.inputs[arg] = new_input;
}

void NetworkSpec::set_label(int id, const std::string& label) {
  check_id(id, "in set_label");
  nodes_[id].label = label;
}

const SpecNode& NetworkSpec::node(int id) const {
  check_id(id, "in node()");
  return nodes_[id];
}

std::size_t NetworkSpec::filter_count() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(), [](const SpecNode& n) {
        return n.type == NodeType::filter;
      }));
}

std::size_t NetworkSpec::source_count() const {
  return nodes_.size() - filter_count();
}

std::vector<std::string> NetworkSpec::field_names() const {
  std::vector<std::string> names;
  for (const SpecNode& n : nodes_) {
    if (n.type == NodeType::field_source) names.push_back(n.field_name);
  }
  return names;
}

std::string NetworkSpec::to_script() const {
  std::ostringstream os;
  os << "net = NetworkSpec()\n";
  for (const SpecNode& n : nodes_) {
    os << 'n' << n.id << " = ";
    switch (n.type) {
      case NodeType::field_source:
        os << "net.add_field_source(\"" << n.field_name << "\")";
        break;
      case NodeType::constant:
        os << "net.add_constant(" << support::format_float(n.const_value)
           << ")";
        break;
      case NodeType::filter: {
        std::vector<std::string> args;
        args.reserve(n.inputs.size());
        for (int in : n.inputs) args.push_back("n" + std::to_string(in));
        os << "net.add_filter(\"" << n.kind << "\", ["
           << support::join(args, ", ") << "]";
        if (n.kind == "decompose") os << ", component=" << n.component;
        os << ")";
        break;
      }
    }
    os << "  # " << n.label << "\n";
  }
  if (output_id_ >= 0) {
    os << "net.set_output(n" << output_id_ << ")\n";
  }
  return os.str();
}

NetworkSpec prune_unreachable(const NetworkSpec& spec) {
  if (spec.output_id() < 0) {
    throw NetworkError("prune_unreachable requires a network output");
  }
  // Mark everything reachable from the output.
  std::vector<bool> keep(spec.nodes().size(), false);
  std::vector<int> stack{spec.output_id()};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (keep[static_cast<std::size_t>(id)]) continue;
    keep[static_cast<std::size_t>(id)] = true;
    for (const int in : spec.node(id).inputs) stack.push_back(in);
  }

  // Rebuild through the public API with compacted ids. Dedup/CSE is
  // disabled during the rebuild: folding already happened (or was
  // deliberately off) in the source spec.
  SpecOptions rebuild_options = spec.options();
  rebuild_options.cse = false;
  rebuild_options.dedup_constants = false;
  NetworkSpec pruned(rebuild_options);
  std::vector<int> remap(spec.nodes().size(), -1);
  for (const SpecNode& node : spec.nodes()) {
    if (!keep[static_cast<std::size_t>(node.id)]) continue;
    int new_id = -1;
    switch (node.type) {
      case NodeType::field_source:
        new_id = pruned.add_field_source(node.field_name);
        break;
      case NodeType::constant:
        new_id = pruned.add_constant(node.const_value);
        break;
      case NodeType::filter: {
        std::vector<int> inputs;
        inputs.reserve(node.inputs.size());
        for (const int in : node.inputs) inputs.push_back(remap[in]);
        new_id = pruned.add_filter(node.kind, inputs, node.component);
        break;
      }
    }
    pruned.set_label(new_id, node.label);
    remap[node.id] = new_id;
  }
  pruned.set_output(remap[spec.output_id()]);
  return pruned;
}

}  // namespace dfg::dataflow
