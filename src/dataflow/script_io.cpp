#include "dataflow/script_io.hpp"

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace dfg::dataflow {

namespace {

[[noreturn]] void fail(const std::string& line, const std::string& why) {
  throw NetworkError("script parse error: " + why + " in line '" + line +
                     "'");
}

std::string strip(const std::string& text) {
  const std::size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const std::size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

/// Extracts the quoted string starting at `pos` (which must point at the
/// opening quote).
std::string quoted(const std::string& line, std::size_t pos) {
  if (pos >= line.size() || line[pos] != '"') {
    fail(line, "expected a quoted string");
  }
  const std::size_t close = line.find('"', pos + 1);
  if (close == std::string::npos) fail(line, "unterminated string");
  return line.substr(pos + 1, close - pos - 1);
}

/// Parses "nNN" into the numeric id.
int node_ref(const std::string& line, const std::string& token) {
  if (token.size() < 2 || token[0] != 'n') {
    fail(line, "expected a node reference like n3, got '" + token + "'");
  }
  return std::atoi(token.c_str() + 1);
}

}  // namespace

NetworkSpec parse_script(std::string_view script, SpecOptions options) {
  // Folding during re-parse would renumber nodes and break references.
  options.cse = false;
  options.dedup_constants = false;
  NetworkSpec spec(options);
  std::map<int, int> id_map;  // script node id -> spec node id

  std::size_t pos = 0;
  while (pos <= script.size()) {
    const std::size_t eol = script.find('\n', pos);
    std::string raw(script.substr(
        pos, eol == std::string_view::npos ? script.size() - pos
                                           : eol - pos));
    pos = eol == std::string_view::npos ? script.size() + 1 : eol + 1;

    // Trailing comment carries the label.
    std::string label;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      label = strip(raw.substr(hash + 1));
      raw = raw.substr(0, hash);
    }
    const std::string line = strip(raw);
    if (line.empty()) continue;
    if (line == "net = NetworkSpec()") continue;

    if (line.rfind("net.set_output(", 0) == 0) {
      const std::size_t open = line.find('(');
      const std::size_t close = line.find(')', open);
      if (close == std::string::npos) fail(line, "missing ')'");
      const int script_id =
          node_ref(line, strip(line.substr(open + 1, close - open - 1)));
      const auto it = id_map.find(script_id);
      if (it == id_map.end()) fail(line, "unknown node reference");
      spec.set_output(it->second);
      continue;
    }

    // nK = net.add_...(...)
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) fail(line, "expected an assignment");
    const int script_id = node_ref(line, strip(line.substr(0, eq)));
    const std::string call = strip(line.substr(eq + 1));

    int new_id = -1;
    if (call.rfind("net.add_field_source(", 0) == 0) {
      new_id = spec.add_field_source(quoted(call, call.find('"')));
    } else if (call.rfind("net.add_constant(", 0) == 0) {
      const std::size_t open = call.find('(');
      const std::size_t close = call.rfind(')');
      if (close == std::string::npos || close <= open) {
        fail(line, "missing ')'");
      }
      new_id = spec.add_constant(
          std::strtod(call.substr(open + 1, close - open - 1).c_str(),
                      nullptr));
    } else if (call.rfind("net.add_filter(", 0) == 0) {
      const std::string kind = quoted(call, call.find('"'));
      const std::size_t lbracket = call.find('[');
      const std::size_t rbracket = call.find(']', lbracket);
      if (lbracket == std::string::npos || rbracket == std::string::npos) {
        fail(line, "missing input list");
      }
      std::vector<int> inputs;
      std::string list = call.substr(lbracket + 1, rbracket - lbracket - 1);
      std::size_t start = 0;
      while (start < list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        const std::string token = strip(list.substr(start, comma - start));
        if (!token.empty()) {
          const auto it = id_map.find(node_ref(line, token));
          if (it == id_map.end()) fail(line, "unknown node reference");
          inputs.push_back(it->second);
        }
        start = comma + 1;
      }
      int component = 0;
      const std::size_t comp = call.find("component=", rbracket);
      if (comp != std::string::npos) {
        component = std::atoi(call.c_str() + comp + 10);
      }
      new_id = spec.add_filter(kind, inputs, component);
    } else {
      fail(line, "unrecognised call");
    }
    if (!label.empty()) spec.set_label(new_id, label);
    id_map[script_id] = new_id;
  }
  return spec;
}

}  // namespace dfg::dataflow
