#include "dataflow/network.hpp"

#include <bit>
#include <queue>

#include "support/checksum.hpp"

namespace dfg::dataflow {

namespace {

std::uint64_t fingerprint_spec(const NetworkSpec& spec) {
  std::uint64_t hash = support::kFnvOffsetBasis;
  const auto mix_int = [&hash](std::int64_t value) {
    hash = support::fnv1a(&value, sizeof(value), hash);
  };
  const auto mix_str = [&hash](const std::string& text) {
    const std::size_t size = text.size();
    hash = support::fnv1a(&size, sizeof(size), hash);
    hash = support::fnv1a(text.data(), text.size(), hash);
  };
  mix_int(static_cast<std::int64_t>(spec.nodes().size()));
  for (const SpecNode& node : spec.nodes()) {
    mix_int(node.id);
    mix_int(static_cast<std::int64_t>(node.type));
    mix_str(node.kind);
    mix_str(node.field_name);
    mix_int(static_cast<std::int64_t>(
        std::bit_cast<std::uint64_t>(node.const_value)));
    mix_int(node.component);
    mix_int(static_cast<std::int64_t>(node.inputs.size()));
    for (const int input : node.inputs) mix_int(input);
    mix_int(node.components);
    mix_str(node.label);
  }
  mix_int(spec.output_id());
  return hash;
}

}  // namespace

std::vector<std::uint64_t> subtree_fingerprints(const NetworkSpec& spec) {
  std::vector<std::uint64_t> fps(spec.nodes().size(), 0);
  for (const SpecNode& node : spec.nodes()) {
    std::uint64_t hash = support::kFnvOffsetBasis;
    const auto mix_int = [&hash](std::int64_t value) {
      hash = support::fnv1a(&value, sizeof(value), hash);
    };
    const auto mix_str = [&hash](const std::string& text) {
      const std::size_t size = text.size();
      hash = support::fnv1a(&size, sizeof(size), hash);
      hash = support::fnv1a(text.data(), text.size(), hash);
    };
    mix_int(static_cast<std::int64_t>(node.type));
    mix_str(node.kind);
    mix_str(node.field_name);
    mix_int(static_cast<std::int64_t>(
        std::bit_cast<std::uint64_t>(node.const_value)));
    mix_int(node.component);
    mix_int(node.components);
    mix_int(static_cast<std::int64_t>(node.inputs.size()));
    for (const int input : node.inputs) {
      mix_int(static_cast<std::int64_t>(
          fps[static_cast<std::size_t>(input)]));
    }
    fps[static_cast<std::size_t>(node.id)] = hash;
  }
  return fps;
}

Network::Network(NetworkSpec spec) : spec_(std::move(spec)) {
  if (spec_.output_id() < 0) {
    throw NetworkError("network has no output; call set_output first");
  }
  const auto& nodes = spec_.nodes();
  const std::size_t n = nodes.size();

  use_counts_.assign(n, 0);
  std::vector<int> pending(n, 0);  // unexecuted producers per node
  std::vector<std::vector<int>> consumers(n);
  for (const SpecNode& node : nodes) {
    for (int in : node.inputs) {
      use_counts_[in] += 1;
      consumers[in].push_back(node.id);
    }
    pending[node.id] = static_cast<int>(node.inputs.size());
  }
  use_counts_[spec_.output_id()] += 1;

  // Kahn's algorithm, smallest-id first for a deterministic order.
  std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
  for (const SpecNode& node : nodes) {
    if (pending[node.id] == 0) ready.push(node.id);
  }
  std::vector<int> seen_producers = pending;
  topo_order_.reserve(n);
  while (!ready.empty()) {
    const int id = ready.top();
    ready.pop();
    topo_order_.push_back(id);
    for (int consumer : consumers[id]) {
      // A consumer may list the same producer several times (u*u).
      if (--seen_producers[consumer] == 0) ready.push(consumer);
    }
  }
  if (topo_order_.size() != n) {
    throw NetworkError("network contains a dependency cycle");
  }

  fingerprint_ = fingerprint_spec(spec_);
  subtree_fingerprints_ = dataflow::subtree_fingerprints(spec_);
}

}  // namespace dfg::dataflow
