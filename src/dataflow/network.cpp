#include "dataflow/network.hpp"

#include <queue>

namespace dfg::dataflow {

Network::Network(NetworkSpec spec) : spec_(std::move(spec)) {
  if (spec_.output_id() < 0) {
    throw NetworkError("network has no output; call set_output first");
  }
  const auto& nodes = spec_.nodes();
  const std::size_t n = nodes.size();

  use_counts_.assign(n, 0);
  std::vector<int> pending(n, 0);  // unexecuted producers per node
  std::vector<std::vector<int>> consumers(n);
  for (const SpecNode& node : nodes) {
    for (int in : node.inputs) {
      use_counts_[in] += 1;
      consumers[in].push_back(node.id);
    }
    pending[node.id] = static_cast<int>(node.inputs.size());
  }
  use_counts_[spec_.output_id()] += 1;

  // Kahn's algorithm, smallest-id first for a deterministic order.
  std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
  for (const SpecNode& node : nodes) {
    if (pending[node.id] == 0) ready.push(node.id);
  }
  std::vector<int> seen_producers = pending;
  topo_order_.reserve(n);
  while (!ready.empty()) {
    const int id = ready.top();
    ready.pop();
    topo_order_.push_back(id);
    for (int consumer : consumers[id]) {
      // A consumer may list the same producer several times (u*u).
      if (--seen_producers[consumer] == 0) ready.push(consumer);
    }
  }
  if (topo_order_.size() != n) {
    throw NetworkError("network contains a dependency cycle");
  }
}

}  // namespace dfg::dataflow
