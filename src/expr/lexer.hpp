// Expression front-end: lexer.
//
// Hand-written scanner producing the token stream for the parser. Python's
// '#' comments are accepted so expression scripts can be annotated like the
// paper's Figure 3 listings.
#pragma once

#include <string_view>
#include <vector>

#include "expr/token.hpp"

namespace dfg::expr {

/// Tokenises the whole input. The returned stream always ends with an
/// end_of_input token. Throws ParseError on unknown characters or malformed
/// number literals.
std::vector<Token> tokenize(std::string_view source);

}  // namespace dfg::expr
