#include "expr/lexer.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <string>

#include "support/error.hpp"

namespace dfg::expr {

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::identifier:
      return "identifier";
    case TokenKind::number:
      return "number";
    case TokenKind::plus:
      return "'+'";
    case TokenKind::minus:
      return "'-'";
    case TokenKind::star:
      return "'*'";
    case TokenKind::slash:
      return "'/'";
    case TokenKind::lparen:
      return "'('";
    case TokenKind::rparen:
      return "')'";
    case TokenKind::lbracket:
      return "'['";
    case TokenKind::rbracket:
      return "']'";
    case TokenKind::comma:
      return "','";
    case TokenKind::assign:
      return "'='";
    case TokenKind::less:
      return "'<'";
    case TokenKind::greater:
      return "'>'";
    case TokenKind::less_equal:
      return "'<='";
    case TokenKind::greater_equal:
      return "'>='";
    case TokenKind::equal_equal:
      return "'=='";
    case TokenKind::not_equal:
      return "'!='";
    case TokenKind::kw_if:
      return "'if'";
    case TokenKind::kw_then:
      return "'then'";
    case TokenKind::kw_else:
      return "'else'";
    case TokenKind::end_of_input:
      return "end of input";
  }
  return "?";
}

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  std::size_t i = 0;

  const auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  const auto push = [&](TokenKind kind, std::string text, int tok_line,
                        int tok_column, double value = 0.0) {
    tokens.push_back(Token{kind, std::move(text), value, tok_line, tok_column});
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < source.size() && source[i] != '\n') advance();
      continue;
    }

    const int tok_line = line;
    const int tok_column = column;

    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < source.size() && is_ident_char(source[i])) advance();
      std::string text(source.substr(start, i - start));
      TokenKind kind = TokenKind::identifier;
      if (text == "if") {
        kind = TokenKind::kw_if;
      } else if (text == "then") {
        kind = TokenKind::kw_then;
      } else if (text == "else") {
        kind = TokenKind::kw_else;
      }
      push(kind, std::move(text), tok_line, tok_column);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < source.size() &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      std::size_t start = i;
      while (i < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[i])) ||
              source[i] == '.')) {
        advance();
      }
      // Exponent part.
      if (i < source.size() && (source[i] == 'e' || source[i] == 'E')) {
        std::size_t mark = i;
        advance();
        if (i < source.size() && (source[i] == '+' || source[i] == '-')) {
          advance();
        }
        if (i < source.size() &&
            std::isdigit(static_cast<unsigned char>(source[i]))) {
          while (i < source.size() &&
                 std::isdigit(static_cast<unsigned char>(source[i]))) {
            advance();
          }
        } else {
          // Not actually an exponent ("2e" followed by an identifier); back
          // out is impossible with our advance bookkeeping, so reject.
          (void)mark;
          throw ParseError("malformed exponent in number literal", tok_line,
                           tok_column);
        }
      }
      const std::string text(source.substr(start, i - start));
      if (text.find("..") != std::string::npos ||
          std::count(text.begin(), text.end(), '.') > 1) {
        throw ParseError("malformed number literal '" + text + "'", tok_line,
                         tok_column);
      }
      char* parse_end = nullptr;
      const double value = std::strtod(text.c_str(), &parse_end);
      if (parse_end != text.c_str() + text.size()) {
        throw ParseError("malformed number literal '" + text + "'", tok_line,
                         tok_column);
      }
      push(TokenKind::number, text, tok_line, tok_column, value);
      continue;
    }

    // Two-character operators first.
    const auto two = source.substr(i, 2);
    if (two == "<=") {
      push(TokenKind::less_equal, "<=", tok_line, tok_column);
      advance(2);
      continue;
    }
    if (two == ">=") {
      push(TokenKind::greater_equal, ">=", tok_line, tok_column);
      advance(2);
      continue;
    }
    if (two == "==") {
      push(TokenKind::equal_equal, "==", tok_line, tok_column);
      advance(2);
      continue;
    }
    if (two == "!=") {
      push(TokenKind::not_equal, "!=", tok_line, tok_column);
      advance(2);
      continue;
    }

    TokenKind kind;
    switch (c) {
      case '+':
        kind = TokenKind::plus;
        break;
      case '-':
        kind = TokenKind::minus;
        break;
      case '*':
        kind = TokenKind::star;
        break;
      case '/':
        kind = TokenKind::slash;
        break;
      case '(':
        kind = TokenKind::lparen;
        break;
      case ')':
        kind = TokenKind::rparen;
        break;
      case '[':
        kind = TokenKind::lbracket;
        break;
      case ']':
        kind = TokenKind::rbracket;
        break;
      case ',':
        kind = TokenKind::comma;
        break;
      case '=':
        kind = TokenKind::assign;
        break;
      case '<':
        kind = TokenKind::less;
        break;
      case '>':
        kind = TokenKind::greater;
        break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'",
                         tok_line, tok_column);
    }
    push(kind, std::string(1, c), tok_line, tok_column);
    advance();
  }

  tokens.push_back(Token{TokenKind::end_of_input, "", 0.0, line, column});
  return tokens;
}

}  // namespace dfg::expr
