// Expression front-end: abstract syntax tree.
//
// The parse tree described in the paper's §III-A: statement roots are
// assignments, call sub-trees are filter invocations whose children are
// either leaves (constants, identifiers) or nested invocations. Bracket
// indexing (du[1]) is kept as its own node kind so the network builder can
// translate it into a "decompose" filter.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace dfg::expr {

enum class NodeKind {
  number,
  identifier,
  call,
  binary,
  unary_minus,
  index,
  conditional,
};

enum class BinaryOp {
  add,
  sub,
  mul,
  div,
  greater,
  less,
  greater_equal,
  less_equal,
  equal,
  not_equal,
};

const char* binary_op_symbol(BinaryOp op);

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  explicit Node(NodeKind k, int line_ = 0, int column_ = 0)
      : kind(k), line(line_), column(column_) {}
  virtual ~Node() = default;

  NodeKind kind;
  int line = 0;
  int column = 0;
};

struct NumberNode final : Node {
  NumberNode(double v, int line, int column)
      : Node(NodeKind::number, line, column), value(v) {}
  double value;
};

struct IdentifierNode final : Node {
  IdentifierNode(std::string n, int line, int column)
      : Node(NodeKind::identifier, line, column), name(std::move(n)) {}
  std::string name;
};

struct CallNode final : Node {
  CallNode(std::string c, std::vector<NodePtr> a, int line, int column)
      : Node(NodeKind::call, line, column),
        callee(std::move(c)),
        args(std::move(a)) {}
  std::string callee;
  std::vector<NodePtr> args;
};

struct BinaryNode final : Node {
  BinaryNode(BinaryOp o, NodePtr l, NodePtr r, int line, int column)
      : Node(NodeKind::binary, line, column),
        op(o),
        lhs(std::move(l)),
        rhs(std::move(r)) {}
  BinaryOp op;
  NodePtr lhs;
  NodePtr rhs;
};

struct UnaryMinusNode final : Node {
  UnaryMinusNode(NodePtr o, int line, int column)
      : Node(NodeKind::unary_minus, line, column), operand(std::move(o)) {}
  NodePtr operand;
};

struct IndexNode final : Node {
  IndexNode(NodePtr b, int comp, int line, int column)
      : Node(NodeKind::index, line, column),
        base(std::move(b)),
        component(comp) {}
  NodePtr base;
  int component;
};

struct ConditionalNode final : Node {
  ConditionalNode(NodePtr c, NodePtr t, NodePtr e, int line, int column)
      : Node(NodeKind::conditional, line, column),
        condition(std::move(c)),
        then_value(std::move(t)),
        else_value(std::move(e)) {}
  NodePtr condition;
  NodePtr then_value;
  NodePtr else_value;
};

/// One `name = expression` statement.
struct Statement {
  std::string target;
  NodePtr value;
  int line = 0;
};

/// A parsed expression script: one or more statements; the last statement's
/// target names the derived field the script produces.
struct Script {
  std::vector<Statement> statements;
};

/// Renders a node back to expression syntax (fully parenthesised); used by
/// diagnostics and tests.
std::string to_string(const Node& node);

}  // namespace dfg::expr
