#include "expr/parser.hpp"

#include <cmath>
#include <utility>

#include "expr/lexer.hpp"
#include "support/error.hpp"

namespace dfg::expr {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Script parse_script() {
    Script script;
    while (!at(TokenKind::end_of_input)) {
      script.statements.push_back(parse_statement());
    }
    if (script.statements.empty()) {
      throw ParseError("empty expression script", 1, 1);
    }
    return script;
  }

  NodePtr parse_single_expression() {
    NodePtr e = parse_expr();
    expect(TokenKind::end_of_input, "after expression");
    return e;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  Token consume() { return tokens_[pos_++]; }
  bool accept(TokenKind kind) {
    if (at(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Token expect(TokenKind kind, const char* context) {
    if (!at(kind)) {
      const Token& t = peek();
      throw ParseError(std::string("expected ") + token_kind_name(kind) + " " +
                           context + ", found " + token_kind_name(t.kind) +
                           (t.text.empty() ? "" : " '" + t.text + "'"),
                       t.line, t.column);
    }
    return consume();
  }

  Statement parse_statement() {
    const Token name = expect(TokenKind::identifier, "at start of statement");
    expect(TokenKind::assign, "after statement target");
    Statement stmt;
    stmt.target = name.text;
    stmt.line = name.line;
    stmt.value = parse_expr();
    return stmt;
  }

  NodePtr parse_expr() { return parse_comparison(); }

  NodePtr parse_comparison() {
    NodePtr lhs = parse_additive();
    BinaryOp op;
    switch (peek().kind) {
      case TokenKind::greater:
        op = BinaryOp::greater;
        break;
      case TokenKind::less:
        op = BinaryOp::less;
        break;
      case TokenKind::greater_equal:
        op = BinaryOp::greater_equal;
        break;
      case TokenKind::less_equal:
        op = BinaryOp::less_equal;
        break;
      case TokenKind::equal_equal:
        op = BinaryOp::equal;
        break;
      case TokenKind::not_equal:
        op = BinaryOp::not_equal;
        break;
      default:
        return lhs;
    }
    const Token tok = consume();
    NodePtr rhs = parse_additive();
    return std::make_unique<BinaryNode>(op, std::move(lhs), std::move(rhs),
                                        tok.line, tok.column);
  }

  NodePtr parse_additive() {
    NodePtr lhs = parse_multiplicative();
    while (at(TokenKind::plus) || at(TokenKind::minus)) {
      const Token tok = consume();
      const BinaryOp op =
          tok.kind == TokenKind::plus ? BinaryOp::add : BinaryOp::sub;
      NodePtr rhs = parse_multiplicative();
      lhs = std::make_unique<BinaryNode>(op, std::move(lhs), std::move(rhs),
                                         tok.line, tok.column);
    }
    return lhs;
  }

  NodePtr parse_multiplicative() {
    NodePtr lhs = parse_unary();
    while (at(TokenKind::star) || at(TokenKind::slash)) {
      const Token tok = consume();
      const BinaryOp op =
          tok.kind == TokenKind::star ? BinaryOp::mul : BinaryOp::div;
      NodePtr rhs = parse_unary();
      lhs = std::make_unique<BinaryNode>(op, std::move(lhs), std::move(rhs),
                                         tok.line, tok.column);
    }
    return lhs;
  }

  NodePtr parse_unary() {
    if (at(TokenKind::minus)) {
      const Token tok = consume();
      NodePtr operand = parse_unary();
      // Fold a literal negation so "-c" is a constant, not a neg filter.
      if (operand->kind == NodeKind::number) {
        auto& num = static_cast<NumberNode&>(*operand);
        return std::make_unique<NumberNode>(-num.value, tok.line, tok.column);
      }
      return std::make_unique<UnaryMinusNode>(std::move(operand), tok.line,
                                              tok.column);
    }
    return parse_postfix();
  }

  NodePtr parse_postfix() {
    NodePtr base = parse_primary();
    while (at(TokenKind::lbracket)) {
      const Token tok = consume();
      const Token index = expect(TokenKind::number, "as component index");
      double integral;
      if (std::modf(index.value, &integral) != 0.0 || index.value < 0) {
        throw ParseError("component index must be a non-negative integer",
                         index.line, index.column);
      }
      expect(TokenKind::rbracket, "after component index");
      base = std::make_unique<IndexNode>(
          std::move(base), static_cast<int>(index.value), tok.line,
          tok.column);
    }
    return base;
  }

  NodePtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::number: {
        const Token tok = consume();
        return std::make_unique<NumberNode>(tok.value, tok.line, tok.column);
      }
      case TokenKind::identifier: {
        const Token tok = consume();
        if (accept(TokenKind::lparen)) {
          std::vector<NodePtr> args;
          if (!at(TokenKind::rparen)) {
            args.push_back(parse_expr());
            while (accept(TokenKind::comma)) args.push_back(parse_expr());
          }
          expect(TokenKind::rparen, "to close argument list");
          return std::make_unique<CallNode>(tok.text, std::move(args),
                                            tok.line, tok.column);
        }
        return std::make_unique<IdentifierNode>(tok.text, tok.line,
                                                tok.column);
      }
      case TokenKind::lparen: {
        consume();
        NodePtr inner = parse_expr();
        expect(TokenKind::rparen, "to close parenthesised expression");
        return inner;
      }
      case TokenKind::kw_if: {
        const Token tok = consume();
        expect(TokenKind::lparen, "after 'if'");
        NodePtr cond = parse_expr();
        expect(TokenKind::rparen, "to close 'if' condition");
        expect(TokenKind::kw_then, "after 'if (...)'");
        expect(TokenKind::lparen, "after 'then'");
        NodePtr then_value = parse_expr();
        expect(TokenKind::rparen, "to close 'then' expression");
        expect(TokenKind::kw_else, "after 'then (...)'");
        expect(TokenKind::lparen, "after 'else'");
        NodePtr else_value = parse_expr();
        expect(TokenKind::rparen, "to close 'else' expression");
        return std::make_unique<ConditionalNode>(
            std::move(cond), std::move(then_value), std::move(else_value),
            tok.line, tok.column);
      }
      default:
        throw ParseError(std::string("expected an expression, found ") +
                             token_kind_name(t.kind) +
                             (t.text.empty() ? "" : " '" + t.text + "'"),
                         t.line, t.column);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Script parse(std::string_view source) {
  Parser parser(tokenize(source));
  return parser.parse_script();
}

NodePtr parse_expression(std::string_view source) {
  Parser parser(tokenize(source));
  return parser.parse_single_expression();
}

}  // namespace dfg::expr
