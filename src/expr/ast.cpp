#include "expr/ast.hpp"

#include "support/string_util.hpp"

namespace dfg::expr {

const char* binary_op_symbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::add:
      return "+";
    case BinaryOp::sub:
      return "-";
    case BinaryOp::mul:
      return "*";
    case BinaryOp::div:
      return "/";
    case BinaryOp::greater:
      return ">";
    case BinaryOp::less:
      return "<";
    case BinaryOp::greater_equal:
      return ">=";
    case BinaryOp::less_equal:
      return "<=";
    case BinaryOp::equal:
      return "==";
    case BinaryOp::not_equal:
      return "!=";
  }
  return "?";
}

std::string to_string(const Node& node) {
  switch (node.kind) {
    case NodeKind::number:
      return support::format_float(static_cast<const NumberNode&>(node).value);
    case NodeKind::identifier:
      return static_cast<const IdentifierNode&>(node).name;
    case NodeKind::call: {
      const auto& call = static_cast<const CallNode&>(node);
      std::vector<std::string> args;
      args.reserve(call.args.size());
      for (const NodePtr& a : call.args) args.push_back(to_string(*a));
      return call.callee + "(" + support::join(args, ", ") + ")";
    }
    case NodeKind::binary: {
      const auto& bin = static_cast<const BinaryNode&>(node);
      return "(" + to_string(*bin.lhs) + " " + binary_op_symbol(bin.op) + " " +
             to_string(*bin.rhs) + ")";
    }
    case NodeKind::unary_minus: {
      const auto& u = static_cast<const UnaryMinusNode&>(node);
      return "(-" + to_string(*u.operand) + ")";
    }
    case NodeKind::index: {
      const auto& idx = static_cast<const IndexNode&>(node);
      return to_string(*idx.base) + "[" + std::to_string(idx.component) + "]";
    }
    case NodeKind::conditional: {
      const auto& c = static_cast<const ConditionalNode&>(node);
      return "if (" + to_string(*c.condition) + ") then (" +
             to_string(*c.then_value) + ") else (" + to_string(*c.else_value) +
             ")";
    }
  }
  return "?";
}

}  // namespace dfg::expr
