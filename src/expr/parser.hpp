// Expression front-end: parser.
//
// Recursive-descent with precedence climbing, the idiomatic C++ analogue of
// the paper's PLY LR(1) parser over the same grammar:
//
//   script      := statement+
//   statement   := IDENT '=' expr
//   expr        := additive (CMPOP additive)?          (non-associative)
//   additive    := multiplicative (('+'|'-') multiplicative)*
//   multiplicative := unary (('*'|'/') unary)*
//   unary       := '-' unary | postfix
//   postfix     := primary ('[' NUMBER ']')*
//   primary     := NUMBER | IDENT | IDENT '(' expr (',' expr)* ')'
//                | '(' expr ')'
//                | 'if' '(' expr ')' 'then' '(' expr ')' 'else' '(' expr ')'
//
// Semantic checks that need the filter registry or field bindings (unknown
// filters, arity, component shapes) are deferred to the network builder so
// the parser stays purely syntactic.
#pragma once

#include <string_view>

#include "expr/ast.hpp"

namespace dfg::expr {

/// Parses a full expression script (one or more assignment statements).
/// Throws ParseError with source positions on syntax errors.
Script parse(std::string_view source);

/// Parses a single expression (no assignment); used by tests and by hosts
/// that evaluate anonymous expressions.
NodePtr parse_expression(std::string_view source);

}  // namespace dfg::expr
