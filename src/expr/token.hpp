// Expression front-end: token definitions.
//
// The expression language is the paper's VisIt-style grammar: assignment
// statements composing arithmetic, function calls (sqrt, grad3d, ...),
// C-style bracket decomposition of vector values (du[1]), numeric literals,
// comparisons and if/then/else conditionals (the construct motivating the
// paper's introduction example).
#pragma once

#include <string>

namespace dfg::expr {

enum class TokenKind {
  identifier,
  number,
  plus,
  minus,
  star,
  slash,
  lparen,
  rparen,
  lbracket,
  rbracket,
  comma,
  assign,
  less,
  greater,
  less_equal,
  greater_equal,
  equal_equal,
  not_equal,
  kw_if,
  kw_then,
  kw_else,
  end_of_input,
};

const char* token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::end_of_input;
  /// Raw source text (identifier name or number literal).
  std::string text;
  /// Parsed value for number tokens.
  double value = 0.0;
  /// 1-based source position of the token's first character.
  int line = 1;
  int column = 1;
};

}  // namespace dfg::expr
