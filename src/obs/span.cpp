#include "obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace dfg::obs {

namespace {

struct OpenSpan {
  std::uint64_t id = 0;
  std::string name;
  std::string category;
  double start_wall = 0.0;
};

// Deliberately leaked: the DFGEN_METRICS_OUT atexit flush reads the
// records during process teardown, after function-local statics in other
// translation units may already be gone.
std::mutex& record_mutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}
std::vector<SpanRecord>& finished_records() {
  static std::vector<SpanRecord>* records = new std::vector<SpanRecord>;
  return *records;
}
std::atomic<std::uint64_t> g_next_id{1};
std::atomic<std::uint64_t> g_next_thread{1};

thread_local std::vector<OpenSpan> t_stack;
thread_local std::uint64_t t_thread_index = 0;

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t thread_index() {
  if (t_thread_index == 0) {
    t_thread_index = g_next_thread.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_index;
}

}  // namespace

SpanTracer& SpanTracer::instance() {
  static SpanTracer tracer;
  return tracer;
}

std::uint64_t SpanTracer::begin(std::string name, std::string category) {
  if (!metrics().enabled()) return 0;
  const std::uint64_t id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  t_stack.push_back(
      OpenSpan{id, std::move(name), std::move(category), wall_now()});
  return id;
}

void SpanTracer::end(std::uint64_t token, double sim_seconds) {
  if (token == 0) return;
  // RAII gives strict LIFO per thread; scan from the back anyway so a
  // leaked inner span cannot wedge every outer one.
  for (std::size_t i = t_stack.size(); i > 0; --i) {
    OpenSpan& open = t_stack[i - 1];
    if (open.id != token) continue;
    SpanRecord record;
    record.id = open.id;
    record.parent = i >= 2 ? t_stack[i - 2].id : 0;
    record.name = std::move(open.name);
    record.category = std::move(open.category);
    record.start_wall = open.start_wall;
    record.dur_wall = wall_now() - open.start_wall;
    record.sim_seconds = sim_seconds;
    record.thread = thread_index();
    t_stack.erase(t_stack.begin() + static_cast<std::ptrdiff_t>(i - 1));
    std::scoped_lock lock(record_mutex());
    finished_records().push_back(std::move(record));
    return;
  }
}

std::uint64_t SpanTracer::current() const {
  return t_stack.empty() ? 0 : t_stack.back().id;
}

std::vector<SpanRecord> SpanTracer::records() const {
  std::scoped_lock lock(record_mutex());
  return finished_records();
}

void SpanTracer::clear() {
  std::scoped_lock lock(record_mutex());
  finished_records().clear();
}

std::string SpanTracer::to_chrome_trace() const {
  std::vector<SpanRecord> records = this->records();
  std::sort(records.begin(), records.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.thread != b.thread) return a.thread < b.thread;
              if (a.start_wall != b.start_wall) {
                return a.start_wall < b.start_wall;
              }
              return a.id < b.id;
            });
  double origin = 0.0;
  for (const SpanRecord& record : records) {
    if (origin == 0.0 || record.start_wall < origin) {
      origin = record.start_wall;
    }
  }
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const SpanRecord& record : records) {
    std::snprintf(
        buf, sizeof buf,
        "%s\n  {\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
        "\"pid\":1,\"tid\":%llu,\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"id\":%llu,\"parent\":%llu,\"sim_seconds\":%.9f}}",
        first ? "" : ",",
        record.name.c_str(), record.category.c_str(),
        static_cast<unsigned long long>(record.thread),
        (record.start_wall - origin) * 1e6, record.dur_wall * 1e6,
        static_cast<unsigned long long>(record.id),
        static_cast<unsigned long long>(record.parent),
        record.sim_seconds);
    out += buf;
    first = false;
  }
  out += "\n]}\n";
  return out;
}

Span::Span(std::string name, std::string category)
    : token_(
          SpanTracer::instance().begin(std::move(name), std::move(category))) {
}

Span::~Span() { SpanTracer::instance().end(token_, sim_seconds_); }

void write_span_trace(const std::string& path) {
  const std::string text = SpanTracer::instance().to_chrome_trace();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw Error("cannot open span trace file '" + path + "'");
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    throw Error("short write to span trace file '" + path + "'");
  }
}

}  // namespace dfg::obs
