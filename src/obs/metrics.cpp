#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdlib>

#include "obs/span.hpp"
#include "support/env.hpp"
#include "support/error.hpp"

namespace dfg::obs {

namespace {

std::atomic<std::uint64_t> g_next_uid{1};
std::atomic<MetricsRegistry*> g_current{nullptr};

/// One canonical string per (name, labels) series, used as the dedupe key.
/// \x1f / \x1e cannot appear in metric names or label text.
std::string series_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  key += '\x1f';
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1e';
    key += v;
    key += '\x1f';
  }
  return key;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string prom_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string labels_text(const Labels& labels, bool json) {
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ",";
    if (json) {
      out += "\"" + json_escape(labels[i].first) +
             "\":\"" + json_escape(labels[i].second) + "\"";
    } else {
      out += labels[i].first + "=\"" + prom_escape(labels[i].second) + "\"";
    }
  }
  return out;
}

std::uint32_t bucket_index(std::uint64_t nanos) {
  if (nanos == 0) return 0;
  const std::uint32_t width = static_cast<std::uint32_t>(std::bit_width(nanos));
  return std::min(width - 1, kHistogramBuckets - 1);
}

void at_exit_flush() {
  const std::string path =
      support::env::get_string("DFGEN_METRICS_OUT", "");
  if (path.empty()) return;
  try {
    write_metrics_file(path);
    write_span_trace(path + ".trace.json");
  } catch (const std::exception& err) {
    std::fprintf(stderr, "dfgen: DFGEN_METRICS_OUT write failed: %s\n",
                 err.what());
  }
}

}  // namespace

std::uint64_t sim_nanos(double sim_seconds) {
  if (!(sim_seconds > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::llround(sim_seconds * 1e9));
}

MetricsRegistry::Shard::~Shard() {
  for (std::atomic<Block*>& block : blocks) {
    delete block.load(std::memory_order_relaxed);
  }
}

std::atomic<std::uint64_t>* MetricsRegistry::Shard::slot(std::uint32_t index,
                                                         bool create) {
  const std::uint32_t block_index = index / kBlockSlots;
  std::atomic<Block*>& entry = blocks[block_index];
  Block* block = entry.load(std::memory_order_acquire);
  if (block == nullptr) {
    if (!create) return nullptr;
    // Only the owning thread creates blocks in its shard, so there is no
    // allocation race; the release store publishes the zeroed block to
    // scrapers.
    block = new Block();
    entry.store(block, std::memory_order_release);
  }
  return &block->slots[index % kBlockSlots];
}

MetricsRegistry::MetricsRegistry()
    : uid_(g_next_uid.fetch_add(1, std::memory_order_relaxed)),
      enabled_(support::env::get_flag("DFGEN_METRICS", true)) {
  support::env::register_known("DFGEN_METRICS");
  support::env::register_known("DFGEN_METRICS_OUT");
}

MetricsRegistry::~MetricsRegistry() = default;

MetricId MetricsRegistry::register_metric(MetricKind kind,
                                          const std::string& name,
                                          Labels labels,
                                          std::uint32_t slots) {
  std::sort(labels.begin(), labels.end());
  const std::string key = series_key(name, labels);
  std::scoped_lock lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    const Meta& existing = metas_[it->second];
    if (existing.kind != kind) {
      throw Error("metric '" + name + "' re-registered as a different kind");
    }
    return existing.id;
  }
  MetricId id = 0;
  if (kind == MetricKind::gauge) {
    if (next_gauge_ >= kMaxGauges) {
      throw Error("metrics registry gauge capacity exhausted");
    }
    id = next_gauge_++;
  } else {
    if (next_slot_ + slots > kMaxBlocks * kBlockSlots) {
      throw Error("metrics registry slot capacity exhausted");
    }
    id = next_slot_;
    next_slot_ += slots;
  }
  index_[key] = metas_.size();
  metas_.push_back(Meta{kind, name, std::move(labels), id});
  return id;
}

MetricId MetricsRegistry::counter(const std::string& name, Labels labels) {
  return register_metric(MetricKind::counter, name, std::move(labels), 1);
}

MetricId MetricsRegistry::gauge(const std::string& name, Labels labels) {
  return register_metric(MetricKind::gauge, name, std::move(labels), 0);
}

MetricId MetricsRegistry::histogram(const std::string& name, Labels labels) {
  return register_metric(MetricKind::histogram, name, std::move(labels),
                         kHistogramBuckets + 2);
}

MetricsRegistry::Shard& MetricsRegistry::this_thread_shard() const {
  // Cache entries are keyed by the registry's process-unique uid, never by
  // its address: a destroyed registry's address can be reused, its uid
  // cannot, so stale entries are unreachable rather than dangling.
  thread_local std::vector<std::pair<std::uint64_t, Shard*>> cache;
  for (const auto& [uid, shard] : cache) {
    if (uid == uid_) return *shard;
  }
  std::scoped_lock lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  cache.emplace_back(uid_, shard);
  return *shard;
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) {
  this_thread_shard().slot(id, true)->fetch_add(delta,
                                                std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(MetricId id, std::uint64_t value) {
  if (!enabled()) return;
  gauges_[id].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_max(MetricId id, std::uint64_t value) {
  if (!enabled()) return;
  std::uint64_t current = gauges_[id].load(std::memory_order_relaxed);
  while (value > current &&
         !gauges_[id].compare_exchange_weak(current, value,
                                            std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::observe(MetricId id, std::uint64_t nanos) {
  if (!enabled()) return;
  Shard& shard = this_thread_shard();
  shard.slot(id, true)->fetch_add(1, std::memory_order_relaxed);
  shard.slot(id + 1, true)->fetch_add(nanos, std::memory_order_relaxed);
  shard.slot(id + 2 + bucket_index(nanos), true)
      ->fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::merged_slot(std::uint32_t slot) const {
  // Callers hold mutex_ (shards_ is a deque; growth happens under it).
  std::uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (const auto* s = shard->slot(slot, false)) {
      total += s->load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t MetricsRegistry::counter_value(MetricId id) const {
  std::scoped_lock lock(mutex_);
  return merged_slot(id);
}

std::uint64_t MetricsRegistry::histogram_count(MetricId id) const {
  std::scoped_lock lock(mutex_);
  return merged_slot(id);
}

std::uint64_t MetricsRegistry::histogram_quantile(MetricId id,
                                                  double q) const {
  q = std::min(1.0, std::max(q, 1e-9));
  std::scoped_lock lock(mutex_);
  const std::uint64_t count = merged_slot(id);
  if (count == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += merged_slot(id + 2 + b);
    if (cumulative >= target) {
      // Bucket b spans [2^b, 2^(b+1)) except bucket 0, which starts at 0;
      // the last bucket is open-ended, so its "edge" saturates.
      if (b + 1 >= 64) return ~std::uint64_t{0};
      return (std::uint64_t{1} << (b + 1)) - 1;
    }
  }
  return ~std::uint64_t{0};
}

std::uint64_t MetricsRegistry::thread_counter_value(MetricId id) const {
  const auto* slot = this_thread_shard().slot(id, false);
  return slot == nullptr ? 0 : slot->load(std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::thread_counter_sum(const std::string& name,
                                                  const Labels& having) const {
  Shard& shard = this_thread_shard();  // before the lock: acquiring may lock
  std::scoped_lock lock(mutex_);
  std::uint64_t total = 0;
  for (const Meta& meta : metas_) {
    if (meta.kind != MetricKind::counter || meta.name != name) continue;
    const bool matches = std::all_of(
        having.begin(), having.end(), [&](const auto& pair) {
          return std::find(meta.labels.begin(), meta.labels.end(), pair) !=
                 meta.labels.end();
        });
    if (!matches) continue;
    if (const auto* slot = shard.slot(meta.id, false)) {
      total += slot->load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t MetricsRegistry::gauge_value(MetricId id) const {
  return gauges_[id].load(std::memory_order_relaxed);
}

void MetricsRegistry::reset_values() {
  std::scoped_lock lock(mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (std::atomic<Block*>& entry : shard->blocks) {
      Block* block = entry.load(std::memory_order_acquire);
      if (block == nullptr) continue;
      for (std::atomic<std::uint64_t>& slot : block->slots) {
        slot.store(0, std::memory_order_relaxed);
      }
    }
  }
  for (std::atomic<std::uint64_t>& gauge : gauges_) {
    gauge.store(0, std::memory_order_relaxed);
  }
}

std::vector<MetricsRegistry::Meta> MetricsRegistry::sorted_metas() const {
  // Callers hold mutex_.
  std::vector<Meta> metas = metas_;
  std::sort(metas.begin(), metas.end(), [](const Meta& a, const Meta& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return metas;
}

std::string MetricsRegistry::to_json() const {
  std::scoped_lock lock(mutex_);
  const std::vector<Meta> metas = sorted_metas();
  // The snapshot's logical timestamp: total simulated nanoseconds charged
  // across every device — deterministic, unlike any wall clock.
  std::uint64_t clock = 0;
  for (const Meta& meta : metas) {
    if (meta.kind == MetricKind::counter &&
        meta.name == "dfgen_vcl_sim_nanos_total") {
      clock += merged_slot(meta.id);
    }
  }
  std::string out = "{\n  \"schema\": \"dfgen-metrics-v1\",\n"
                    "  \"clock\": \"sim\",\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%" PRIu64, clock);
  out += std::string("  \"sim_nanos\": ") + buf + ",\n  \"metrics\": [";
  bool first = true;
  for (const Meta& meta : metas) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + json_escape(meta.name) + "\",\"labels\":{" +
           labels_text(meta.labels, /*json=*/true) + "},";
    switch (meta.kind) {
      case MetricKind::counter:
        std::snprintf(buf, sizeof buf, "%" PRIu64, merged_slot(meta.id));
        out += std::string("\"type\":\"counter\",\"value\":") + buf + "}";
        break;
      case MetricKind::gauge:
        std::snprintf(buf, sizeof buf, "%" PRIu64,
                      gauges_[meta.id].load(std::memory_order_relaxed));
        out += std::string("\"type\":\"gauge\",\"value\":") + buf + "}";
        break;
      case MetricKind::histogram: {
        out += "\"type\":\"histogram\",\"count\":";
        std::snprintf(buf, sizeof buf, "%" PRIu64, merged_slot(meta.id));
        out += buf;
        std::snprintf(buf, sizeof buf, "%" PRIu64, merged_slot(meta.id + 1));
        out += std::string(",\"sum_nanos\":") + buf + ",\"buckets\":[";
        bool first_bucket = true;
        for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
          const std::uint64_t count = merged_slot(meta.id + 2 + b);
          if (count == 0) continue;
          std::snprintf(buf, sizeof buf, "[%u,%" PRIu64 "]", b, count);
          out += first_bucket ? "" : ",";
          out += buf;
          first_bucket = false;
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  std::scoped_lock lock(mutex_);
  const std::vector<Meta> metas = sorted_metas();
  std::string out;
  char buf[64];
  std::string last_name;
  for (const Meta& meta : metas) {
    if (meta.name != last_name) {
      const char* type = meta.kind == MetricKind::counter   ? "counter"
                         : meta.kind == MetricKind::gauge   ? "gauge"
                                                            : "histogram";
      out += "# TYPE " + meta.name + " " + type + "\n";
      last_name = meta.name;
    }
    const std::string labels = labels_text(meta.labels, /*json=*/false);
    if (meta.kind == MetricKind::histogram) {
      std::uint64_t cumulative = 0;
      for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
        cumulative += merged_slot(meta.id + 2 + b);
        if (cumulative == 0) continue;  // skip the leading empty buckets
        std::snprintf(buf, sizeof buf, "%llu",
                      1ULL << std::min(b + 1, 63u));
        out += meta.name + "_bucket{" + labels + (labels.empty() ? "" : ",") +
               "le=\"" + buf + "\"} ";
        std::snprintf(buf, sizeof buf, "%" PRIu64, cumulative);
        out += std::string(buf) + "\n";
      }
      std::snprintf(buf, sizeof buf, "%" PRIu64, merged_slot(meta.id));
      out += meta.name + "_bucket{" + labels + (labels.empty() ? "" : ",") +
             "le=\"+Inf\"} " + buf + "\n";
      out += meta.name + "_count{" + labels + "} " + buf + "\n";
      std::snprintf(buf, sizeof buf, "%" PRIu64, merged_slot(meta.id + 1));
      out += meta.name + "_sum{" + labels + "} " + buf + "\n";
      continue;
    }
    const std::uint64_t value =
        meta.kind == MetricKind::counter
            ? merged_slot(meta.id)
            : gauges_[meta.id].load(std::memory_order_relaxed);
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out += meta.name + (labels.empty() ? "" : "{" + labels + "}") + " " +
           buf + "\n";
  }
  return out;
}

void MetricsRegistry::dump(std::FILE* out) const {
  std::scoped_lock lock(mutex_);
  const std::vector<Meta> metas = sorted_metas();
  std::fprintf(out, "=== dfgen metrics (%zu series) ===\n", metas.size());
  for (const Meta& meta : metas) {
    std::string series = meta.name;
    if (!meta.labels.empty()) {
      series += "{" + labels_text(meta.labels, /*json=*/false) + "}";
    }
    switch (meta.kind) {
      case MetricKind::counter:
        std::fprintf(out, "%-72s %12" PRIu64 "\n", series.c_str(),
                     merged_slot(meta.id));
        break;
      case MetricKind::gauge:
        std::fprintf(out, "%-72s %12" PRIu64 "  (gauge)\n", series.c_str(),
                     gauges_[meta.id].load(std::memory_order_relaxed));
        break;
      case MetricKind::histogram: {
        const std::uint64_t count = merged_slot(meta.id);
        const std::uint64_t sum = merged_slot(meta.id + 1);
        std::fprintf(out,
                     "%-72s %12" PRIu64 "  (histogram, sum %" PRIu64
                     " ns, mean %.0f ns)\n",
                     series.c_str(), count, sum,
                     count == 0 ? 0.0
                                : static_cast<double>(sum) /
                                      static_cast<double>(count));
        break;
      }
    }
  }
}

MetricsRegistry& metrics() {
  MetricsRegistry* current = g_current.load(std::memory_order_acquire);
  if (current != nullptr) return *current;
  static MetricsRegistry default_registry;
  // Registered only after default_registry (and the env statics its
  // constructor touches) finished constructing: atexit handlers and static
  // destructors run in reverse registration order, so the flush sees them
  // all still alive.
  static std::once_flag flush_once;
  std::call_once(flush_once, [] { std::atexit(at_exit_flush); });
  return default_registry;
}

ScopedMetricsRegistry::ScopedMetricsRegistry()
    : prev_(g_current.exchange(&mine_, std::memory_order_acq_rel)) {}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  g_current.store(prev_, std::memory_order_release);
}

void dump_metrics(std::FILE* out) { metrics().dump(out); }

void write_metrics_file(const std::string& path) {
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string text =
      json ? metrics().to_json() : metrics().to_prometheus();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw Error("cannot open metrics output file '" + path + "'");
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    throw Error("short write to metrics output file '" + path + "'");
  }
}

}  // namespace dfg::obs
