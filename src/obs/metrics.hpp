// Observability layer: process-wide metrics registry.
//
// The registry holds three metric families, all keyed by (name, labels):
//
//   counters   — monotonic uint64 totals. The write path is lock-free: each
//                thread owns a private shard of atomic slots and increments
//                with relaxed atomics; a scrape merges all shards. Counters
//                are *always live* — the report structs (EvaluationReport,
//                ServiceSnapshot, …) are thin views over counter deltas, so
//                disabling metrics must not zero them.
//   gauges     — registry-level atomics with set / record-max semantics
//                (buffer high-water marks, queue depth).
//   histograms — fixed log2-bucket distributions of simulated-time
//                nanoseconds: bucket i counts values in [2^i, 2^(i+1)) ns,
//                plus an exact count and sum.
//
// Determinism: every stored value is an integer (simulated seconds are
// converted to nanoseconds at the instrumentation site), so the merged
// totals — and therefore the JSON snapshot — are byte-identical regardless
// of how work was split across threads or in which order shards merge.
// Wall-clock durations never enter the registry; the only clock in a
// snapshot is the simulated one. One documented exception: the shard
// router's end-to-end request-latency histograms (src/shard) are
// wall-clock by design — they measure real queueing, rerouting and
// scheduling behaviour, which the simulated device clock cannot see. Those
// series never appear in golden snapshots.
//
// Environment knobs (registered in support/env):
//   DFGEN_METRICS=0        — disable the optional layers: gauges, histograms
//                            and spans become no-ops (counters stay live, see
//                            above). Default: enabled.
//   DFGEN_METRICS_OUT=path — at process exit, write the registry to `path`
//                            (JSON snapshot if the path ends in .json,
//                            Prometheus text exposition otherwise) and the
//                            span trace to `path`.trace.json.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dfg::obs {

/// Sorted-on-registration (key, value) pairs identifying one time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { counter, gauge, histogram };

/// Opaque handle: the base slot (counters, histograms) or gauge index.
/// Handles are only meaningful against the registry that issued them.
using MetricId = std::uint32_t;

/// Histograms span 48 log2 buckets: [0,2), [2,4), … [2^47, inf) ns — enough
/// for sub-nanosecond noise up to ~39 hours of simulated time.
inline constexpr std::uint32_t kHistogramBuckets = 48;

/// Converts simulated seconds to the integer nanoseconds the registry
/// stores. Centralised so every instrumentation site rounds identically.
std::uint64_t sim_nanos(double sim_seconds);

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- Registration (mutex-protected, idempotent per (name, labels)) ---
  // Re-registering an existing series returns the same id; registering the
  // same (name, labels) under a different kind throws.
  MetricId counter(const std::string& name, Labels labels = {});
  MetricId gauge(const std::string& name, Labels labels = {});
  MetricId histogram(const std::string& name, Labels labels = {});

  // --- Write fast paths ---
  /// Lock-free relaxed add on the calling thread's shard. Always live.
  void add(MetricId id, std::uint64_t delta = 1);
  /// Gauge store / monotonic max. No-ops while the registry is disabled.
  void gauge_set(MetricId id, std::uint64_t value);
  void gauge_max(MetricId id, std::uint64_t value);
  /// Histogram observation (lock-free, calling thread's shard). No-op while
  /// the registry is disabled.
  void observe(MetricId id, std::uint64_t nanos);

  // --- Reads ---
  /// Merged total across every shard.
  std::uint64_t counter_value(MetricId id) const;
  /// The calling thread's shard only. Reports take before/after deltas of
  /// this so concurrent evaluations never leak traffic into each other.
  std::uint64_t thread_counter_value(MetricId id) const;
  /// Sum of thread_counter_value over every registered counter named
  /// `name` whose label set contains every pair in `having` (e.g. event
  /// totals of one kind across all devices a single-threaded distributed
  /// run touched).
  std::uint64_t thread_counter_sum(const std::string& name,
                                   const Labels& having = {}) const;
  std::uint64_t gauge_value(MetricId id) const;
  /// Merged observation count of a histogram.
  std::uint64_t histogram_count(MetricId id) const;
  /// Quantile estimate from the merged log2 buckets: the inclusive upper
  /// edge (2^(b+1) − 1 ns) of the first bucket at which the cumulative
  /// count reaches ceil(q × count) — an upper bound within 2× of the true
  /// quantile. Returns 0 for an empty histogram; q is clamped to (0, 1].
  std::uint64_t histogram_quantile(MetricId id, double q) const;

  /// DFGEN_METRICS gate for gauges, histograms and spans (counters always
  /// run; see the header comment).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Zeroes every value (registrations survive). Test convenience; callers
  /// must ensure no concurrent writers.
  void reset_values();

  // --- Exposition ---
  /// Prometheus text format, series sorted by (name, labels).
  std::string to_prometheus() const;
  /// Deterministic JSON snapshot: stable key order, sorted series, integer
  /// values only, `sim_nanos` total as the logical timestamp. Byte-identical
  /// across runs and thread counts for a deterministic workload.
  std::string to_json() const;
  /// Human-readable end-of-run summary table.
  void dump(std::FILE* out) const;

 private:
  // A shard is one thread's private slot array, grown in zeroed blocks the
  // owning thread allocates on first touch; the scrape path reads block
  // pointers with acquire loads and never takes the fast-path lock.
  static constexpr std::uint32_t kBlockSlots = 1024;
  static constexpr std::uint32_t kMaxBlocks = 64;
  struct Block {
    std::array<std::atomic<std::uint64_t>, kBlockSlots> slots{};
  };
  struct Shard {
    std::array<std::atomic<Block*>, kMaxBlocks> blocks{};
    ~Shard();
    std::atomic<std::uint64_t>* slot(std::uint32_t index, bool create);
  };

  struct Meta {
    MetricKind kind;
    std::string name;
    Labels labels;
    MetricId id;  // base slot or gauge index
  };

  static constexpr std::uint32_t kMaxGauges = 1024;

  MetricId register_metric(MetricKind kind, const std::string& name,
                           Labels labels, std::uint32_t slots);
  Shard& this_thread_shard() const;
  std::uint64_t merged_slot(std::uint32_t slot) const;
  std::vector<Meta> sorted_metas() const;

  const std::uint64_t uid_;  // process-unique; keys the thread shard cache
  std::atomic<bool> enabled_;

  mutable std::mutex mutex_;
  std::vector<Meta> metas_;
  std::map<std::string, std::size_t> index_;  // series key -> metas_ index
  std::uint32_t next_slot_ = 0;
  std::uint32_t next_gauge_ = 0;
  mutable std::deque<std::unique_ptr<Shard>> shards_;
  std::array<std::atomic<std::uint64_t>, kMaxGauges> gauges_{};
};

/// The current process-wide registry (swap with ScopedMetricsRegistry).
MetricsRegistry& metrics();

/// Installs a fresh registry as the process-wide one for its lifetime, then
/// restores the previous registry. Tests use this so golden snapshots
/// contain exactly their own workload's series. Not reentrancy-safe across
/// threads: intended for single test bodies.
class ScopedMetricsRegistry {
 public:
  ScopedMetricsRegistry();
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

  MetricsRegistry& registry() { return mine_; }

 private:
  MetricsRegistry mine_;
  MetricsRegistry* prev_;
};

/// `dump_metrics()` — the end-of-run summary table on stderr (or `out`).
void dump_metrics(std::FILE* out = stderr);

/// Writes the current registry to `path`: JSON snapshot when the path ends
/// in ".json", Prometheus text otherwise. Throws support::Error on I/O
/// failure.
void write_metrics_file(const std::string& path);

}  // namespace dfg::obs
