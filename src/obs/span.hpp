// Observability layer: hierarchical span tracing.
//
// Spans unify the per-queue Chrome-trace tracks under one hierarchy:
//
//   request (Engine::evaluate / EvalService batch)
//     └─ strategy attempt (one fallback-ladder rung)
//          └─ block (one distributed block, when applicable)
//               └─ command (one virtual device command)
//
// Each thread keeps a stack of open spans; a new span's parent is the
// innermost open span on the same thread, so the hierarchy falls out of
// lexical nesting with no plumbing through call signatures. Finished spans
// carry both clocks: wall time (for the Chrome trace timeline) and
// simulated seconds (the paper's cost-model time).
//
// The tracer is gated by the metrics registry's DFGEN_METRICS flag: while
// disabled, begin() hands out the null token and everything is a no-op.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dfg::obs {

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root span
  std::string name;
  std::string category;  // "request" | "attempt" | "block" | "command"
  double start_wall = 0.0;
  double dur_wall = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t thread = 0;  // small stable per-thread index
};

class SpanTracer {
 public:
  static SpanTracer& instance();

  /// Opens a span under the calling thread's innermost open span. Returns
  /// the span token, or 0 when tracing is disabled.
  std::uint64_t begin(std::string name, std::string category);
  /// Closes the span `token` (ignores 0), recording `sim_seconds` of
  /// simulated time against it.
  void end(std::uint64_t token, double sim_seconds = 0.0);

  /// The id of the calling thread's innermost open span (0 when none).
  std::uint64_t current() const;

  std::vector<SpanRecord> records() const;
  void clear();

  /// Chrome trace-event JSON ("X" complete events, one tid per thread,
  /// sim_seconds and parent id in args).
  std::string to_chrome_trace() const;

 private:
  SpanTracer() = default;
};

/// RAII span: opens in the constructor, closes in the destructor. Simulated
/// time is attributed with add_sim_seconds before destruction.
class Span {
 public:
  Span(std::string name, std::string category);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void add_sim_seconds(double seconds) { sim_seconds_ += seconds; }

 private:
  std::uint64_t token_;
  double sim_seconds_ = 0.0;
};

/// Writes the span trace to `path` as Chrome trace-event JSON. Throws
/// support::Error on I/O failure.
void write_span_trace(const std::string& path);

}  // namespace dfg::obs
