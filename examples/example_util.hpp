// Shared helpers for the example applications: a tiny PPM pseudocolor
// writer (used to render derived-field slices, echoing the paper's
// Figure 7 rendering) and a console report printer.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "mesh/mesh.hpp"
#include "support/string_util.hpp"

namespace dfgex {

/// Maps a normalized value in [0, 1] to a blue-white-red pseudocolor.
inline void pseudocolor(float t, unsigned char rgb[3]) {
  t = std::clamp(t, 0.0f, 1.0f);
  const float r = std::clamp(2.0f * t, 0.0f, 1.0f);
  const float b = std::clamp(2.0f * (1.0f - t), 0.0f, 1.0f);
  const float g = 1.0f - std::fabs(2.0f * t - 1.0f);
  rgb[0] = static_cast<unsigned char>(255.0f * r);
  rgb[1] = static_cast<unsigned char>(255.0f * g);
  rgb[2] = static_cast<unsigned char>(255.0f * b);
}

/// Writes a z-slice of a cell-centered scalar field as a binary PPM image.
/// Returns true on success.
inline bool write_slice_ppm(const std::string& path,
                            const std::vector<float>& values,
                            const dfg::mesh::Dims& dims, std::size_t k_slice) {
  if (k_slice >= dims.nz || values.size() < dims.cell_count()) return false;
  float lo = values[0], hi = values[0];
  for (std::size_t j = 0; j < dims.ny; ++j) {
    for (std::size_t i = 0; i < dims.nx; ++i) {
      const float v = values[i + dims.nx * (j + dims.ny * k_slice)];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const float span = hi > lo ? hi - lo : 1.0f;

  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P6\n" << dims.nx << " " << dims.ny << "\n255\n";
  for (std::size_t j = 0; j < dims.ny; ++j) {
    for (std::size_t i = 0; i < dims.nx; ++i) {
      const float v = values[i + dims.nx * (j + dims.ny * k_slice)];
      unsigned char rgb[3];
      pseudocolor((v - lo) / span, rgb);
      out.write(reinterpret_cast<const char*>(rgb), 3);
    }
  }
  return static_cast<bool>(out);
}

/// Prints the interesting parts of an evaluation report.
inline void print_report(const dfg::EvaluationReport& report) {
  std::printf("  strategy        : %s\n", report.strategy.c_str());
  std::printf("  derived field   : %s (%zu values)\n",
              report.output_name.c_str(), report.elements);
  std::printf("  device events   : Dev-W %zu, Dev-R %zu, K-Exe %zu\n",
              report.dev_writes, report.dev_reads, report.kernel_execs);
  std::printf("  simulated time  : %.6f s (wall %.6f s)\n",
              report.sim_seconds, report.wall_seconds);
  std::printf("  device memory   : %s high water\n",
              dfg::support::format_bytes(report.memory_high_water_bytes)
                  .c_str());
}

}  // namespace dfgex
