// In-situ embedding: a miniature "simulation" advances a velocity field in
// time and uses the engine as an in-situ analysis plugin, the way the paper
// embeds its framework inside VisIt as a Python Expression.
//
// The key in-situ properties demonstrated:
//   * the engine operates on the simulation's own arrays (bound views),
//   * rebinding per time step is free; only device transfers are profiled,
//   * the expression is parsed and the network rebuilt per evaluation, so
//     users can change the analysis between steps without recompiling.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "example_util.hpp"
#include "mesh/generators.hpp"
#include "vcl/catalog.hpp"

namespace {

/// A toy "solver": rotates the ABC flow's phase each step. Stands in for a
/// real simulation advancing its state arrays in place.
void advance(const dfg::mesh::RectilinearMesh& mesh,
             dfg::mesh::VectorField& field, float time) {
  const auto& d = mesh.dims();
  for (std::size_t k = 0; k < d.nz; ++k) {
    const float z = mesh.z_center(k) + time;
    for (std::size_t j = 0; j < d.ny; ++j) {
      const float y = mesh.y_center(j) + 0.5f * time;
      for (std::size_t i = 0; i < d.nx; ++i) {
        const float x = mesh.x_center(i) - time;
        const std::size_t idx = mesh.cell_index(i, j, k);
        field.u[idx] = std::sin(z) + std::cos(y);
        field.v[idx] = std::sin(x) + std::cos(z);
        field.w[idx] = std::sin(y) + std::cos(x);
      }
    }
  }
}

}  // namespace

int main() {
  const float two_pi = 6.2831853f;
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({32, 32, 32}, two_pi, two_pi,
                                          two_pi);
  dfg::mesh::VectorField field;
  field.u.resize(mesh.cell_count());
  field.v.resize(mesh.cell_count());
  field.w.resize(mesh.cell_count());

  dfg::vcl::Device device(dfg::vcl::tesla_m2050_scaled());
  dfg::Engine engine(device, {dfg::runtime::StrategyKind::fusion, {}});
  engine.bind_mesh(mesh);
  // Bind once: the views track the simulation arrays in place.
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);

  std::printf("step |  max |v|  | vortex fraction | sim time [s]\n");
  for (int step = 0; step < 8; ++step) {
    const float time = 0.2f * static_cast<float>(step);
    advance(mesh, field, time);  // the "solver"

    // In-situ analysis on the fresh state.
    const auto vmag = engine.evaluate(dfg::expressions::kVelocityMagnitude);
    const auto qcrit = engine.evaluate(dfg::expressions::kQCriterion);

    float max_mag = 0.0f;
    for (const float m : vmag.values) max_mag = std::max(max_mag, m);
    std::size_t vortex = 0;
    for (const float q : qcrit.values) {
      if (q > 0.0f) ++vortex;
    }
    std::printf("%4d | %9.4f | %14.1f%% | %.6f\n", step, max_mag,
                100.0 * static_cast<double>(vortex) /
                    static_cast<double>(qcrit.values.size()),
                vmag.sim_seconds + qcrit.sim_seconds);
  }

  std::printf("\nlast step's fused Q-criterion kernel was generated at "
              "runtime; first lines:\n");
  const auto report = engine.evaluate(dfg::expressions::kQCriterion);
  const std::string& src = report.kernel_source;
  std::size_t pos = 0;
  for (int line = 0; line < 6 && pos < src.size(); ++line) {
    const std::size_t next = src.find('\n', pos);
    std::printf("  %s\n", src.substr(pos, next - pos).c_str());
    pos = next + 1;
  }
  return 0;
}
