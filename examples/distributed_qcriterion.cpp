// Distributed Q-criterion: a runnable miniature of the paper's Figure 7
// experiment. Decomposes a global RT flow into sub-grids, assigns them to
// simulated MPI tasks (two virtual GPUs per node, several sub-grids per
// device), generates ghost data, computes the Q-criterion with the fusion
// strategy on every block, gathers the global result, verifies it against
// a serial run, and renders a pseudocolor slice with the sub-grid outline
// overlaid — like the paper's inset.
#include <cstdio>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "distrib/dist_engine.hpp"
#include "example_util.hpp"
#include "mesh/generators.hpp"
#include "vcl/catalog.hpp"

int main() {
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({96, 96, 128}, 1.0f, 1.0f, 1.3f);
  std::printf("global grid %s (%zu cells)\n",
              dfg::mesh::to_string(mesh.dims()).c_str(), mesh.cell_count());
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);

  dfg::distrib::ClusterConfig config;
  config.nodes = 4;
  config.devices_per_node = 2;
  config.device_spec = dfg::vcl::tesla_m2050_scaled();

  dfg::distrib::GridDecomposition decomposition(mesh.dims(), 4, 4, 4);
  dfg::distrib::DistributedEngine engine(mesh, decomposition, config);
  engine.bind_global("u", field.u);
  engine.bind_global("v", field.v);
  engine.bind_global("w", field.w);

  const dfg::distrib::DistributedReport report = engine.evaluate(
      dfg::expressions::kQCriterion, dfg::runtime::StrategyKind::fusion);

  std::printf("blocks: %zu over %zu MPI tasks (%zu nodes x %zu devices), "
              "up to %zu blocks/device\n",
              report.blocks, report.ranks, config.nodes,
              config.devices_per_node, report.blocks_per_rank_max);
  std::printf("ghost exchange: %zu messages, %s\n", report.ghost_messages,
              dfg::support::format_bytes(report.ghost_bytes).c_str());
  std::printf("simulated device time: %.5f s critical path, %.5f s "
              "aggregate\n",
              report.max_rank_sim_seconds, report.total_sim_seconds);

  // Verify against a single-device run.
  dfg::vcl::Device serial_device(dfg::vcl::xeon_x5660());
  dfg::Engine serial(serial_device);
  serial.bind_mesh(mesh);
  serial.bind("u", field.u);
  serial.bind("v", field.v);
  serial.bind("w", field.w);
  const auto serial_values =
      serial.evaluate(dfg::expressions::kQCriterion).values;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < serial_values.size(); ++i) {
    if (report.values[i] != serial_values[i]) ++mismatches;
  }
  std::printf("distributed vs serial: %s (%zu mismatches)\n",
              mismatches == 0 ? "BIT-EXACT" : "MISMATCH", mismatches);

  // Render the mid-plane with sub-grid outlines (the Figure 7 inset look).
  std::vector<float> slice_with_outline = report.values;
  const auto& d = mesh.dims();
  const dfg::mesh::Dims block = decomposition.block_dims();
  float hi = 0.0f;
  for (const float q : report.values) hi = std::max(hi, std::fabs(q));
  const std::size_t k_slice = d.nz / 2;
  for (std::size_t j = 0; j < d.ny; ++j) {
    for (std::size_t i = 0; i < d.nx; ++i) {
      if (i % block.nx == 0 || j % block.ny == 0) {
        slice_with_outline[i + d.nx * (j + d.ny * k_slice)] = hi;
      }
    }
  }
  if (dfgex::write_slice_ppm("distributed_q_criterion.ppm",
                             slice_with_outline, d, k_slice)) {
    std::printf("wrote distributed_q_criterion.ppm (sub-grid outline "
                "overlaid)\n");
  }
  return mismatches == 0 ? 0 : 1;
}
