// Expression command-line tool: evaluate any derived-field expression
// against a generated flow from the shell — the closest thing to VisIt's
// expression dialog in a terminal.
//
//   expression_cli [options] "<expression script>"
//     --grid NX,NY,NZ      grid size                (default 32,32,32)
//     --flow rt|abc        source velocity field    (default rt)
//     --strategy NAME      roundtrip|staged|fusion|streamed (default fusion)
//     --device cpu|gpu     virtual device           (default cpu)
//     --show-kernel        print the generated fused kernel source
//     --show-script        print the network-definition script
//
// The bound fields are u, v, w plus the mesh arrays (x, y, z, dims); the
// last assignment in the script is the derived field.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/engine.hpp"
#include "example_util.hpp"
#include "mesh/generators.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"

namespace {

struct CliOptions {
  dfg::mesh::Dims dims{32, 32, 32};
  bool abc_flow = false;
  dfg::runtime::StrategyKind strategy = dfg::runtime::StrategyKind::fusion;
  bool gpu = false;
  bool show_kernel = false;
  bool show_script = false;
  std::string expression;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--grid NX,NY,NZ] [--flow rt|abc] "
               "[--strategy roundtrip|staged|fusion|streamed] "
               "[--device cpu|gpu] [--show-kernel] [--show-script] "
               "\"expression\"\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--grid") {
      const char* value = next();
      unsigned long nx = 0, ny = 0, nz = 0;
      if (value == nullptr ||
          std::sscanf(value, "%lu,%lu,%lu", &nx, &ny, &nz) != 3 || nx == 0 ||
          ny == 0 || nz == 0) {
        return false;
      }
      options.dims = dfg::mesh::Dims{nx, ny, nz};
    } else if (arg == "--flow") {
      const char* value = next();
      if (value == nullptr) return false;
      if (std::strcmp(value, "abc") == 0) {
        options.abc_flow = true;
      } else if (std::strcmp(value, "rt") != 0) {
        return false;
      }
    } else if (arg == "--strategy") {
      const char* value = next();
      if (value == nullptr) return false;
      const std::string name = value;
      if (name == "roundtrip") {
        options.strategy = dfg::runtime::StrategyKind::roundtrip;
      } else if (name == "staged") {
        options.strategy = dfg::runtime::StrategyKind::staged;
      } else if (name == "fusion") {
        options.strategy = dfg::runtime::StrategyKind::fusion;
      } else if (name == "streamed") {
        options.strategy = dfg::runtime::StrategyKind::streamed;
      } else {
        return false;
      }
    } else if (arg == "--device") {
      const char* value = next();
      if (value == nullptr) return false;
      if (std::strcmp(value, "gpu") == 0) {
        options.gpu = true;
      } else if (std::strcmp(value, "cpu") != 0) {
        return false;
      }
    } else if (arg == "--show-kernel") {
      options.show_kernel = true;
    } else if (arg == "--show-script") {
      options.show_script = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      if (!options.expression.empty()) options.expression += "\n";
      options.expression += arg;
    }
  }
  return !options.expression.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, options)) return usage(argv[0]);

  const float two_pi = 6.2831853f;
  const dfg::mesh::RectilinearMesh mesh =
      options.abc_flow
          ? dfg::mesh::RectilinearMesh::uniform(options.dims, two_pi, two_pi,
                                                two_pi)
          : dfg::mesh::RectilinearMesh::uniform(options.dims);
  const dfg::mesh::VectorField field =
      options.abc_flow ? dfg::mesh::abc_flow(mesh)
                       : dfg::mesh::rayleigh_taylor_flow(mesh);

  dfg::vcl::Device device(options.gpu ? dfg::vcl::tesla_m2050_scaled()
                                      : dfg::vcl::xeon_x5660_scaled());
  dfg::Engine engine(device, {options.strategy, {}});
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);

  try {
    const dfg::EvaluationReport report = engine.evaluate(options.expression);
    float lo = report.values[0], hi = report.values[0];
    double sum = 0.0;
    for (const float value : report.values) {
      lo = std::min(lo, value);
      hi = std::max(hi, value);
      sum += value;
    }
    std::printf("grid %s on %s\n", dfg::mesh::to_string(mesh.dims()).c_str(),
                device.spec().name.c_str());
    dfgex::print_report(report);
    std::printf("  field stats     : min %.5g, max %.5g, mean %.5g\n", lo, hi,
                sum / static_cast<double>(report.values.size()));
    if (options.show_script) {
      std::printf("\nnetwork definition script:\n%s",
                  report.network_script.c_str());
    }
    if (options.show_kernel && !report.kernel_source.empty()) {
      std::printf("\ngenerated kernel:\n%s", report.kernel_source.c_str());
    }
  } catch (const dfg::Error& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
  return 0;
}
