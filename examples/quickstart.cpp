// Quickstart: derive one field from host arrays in a dozen lines.
//
//   1. create a virtual device,
//   2. create an engine with an execution strategy,
//   3. bind your arrays (in situ: no copies on the host side),
//   4. evaluate a VisIt-style expression,
//   5. read the derived field and the device-event report.
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "example_util.hpp"
#include "vcl/catalog.hpp"

int main() {
  // Host arrays, as a simulation would own them.
  const std::vector<float> u{1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> v{0.0f, 2.0f, 4.0f, 6.0f};
  const std::vector<float> w{2.0f, 1.0f, 0.0f, 1.0f};

  // A virtual OpenCL CPU device (catalog also offers the Tesla M2050).
  dfg::vcl::Device device(dfg::vcl::xeon_x5660());

  dfg::Engine engine(device, {dfg::runtime::StrategyKind::fusion, {}});
  engine.bind("u", u);
  engine.bind("v", v);
  engine.bind("w", w);

  const dfg::EvaluationReport report =
      engine.evaluate("v_mag = sqrt(u*u + v*v + w*w)");

  std::printf("velocity magnitude:");
  for (const float value : report.values) std::printf(" %.3f", value);
  std::printf("\n\nreport:\n");
  dfgex::print_report(report);

  std::printf("\ngenerated fused kernel:\n%s", report.kernel_source.c_str());
  return 0;
}
