// Strategy exploration under device memory constraints: the trade-off the
// paper's discussion (§V-D) highlights. Two selection mechanisms are
// demonstrated:
//   * analytical — the planner predicts each strategy's device footprint
//     without executing (runtime::estimate_high_water) and picks the
//     fastest one that fits (runtime::select_strategy);
//   * empirical — try the fastest strategy and fall back on
//     DeviceOutOfMemory, which the analytical path makes unnecessary.
#include <cstdio>
#include <optional>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "example_util.hpp"
#include "mesh/generators.hpp"
#include "runtime/planner.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"

namespace {

std::optional<dfg::EvaluationReport> try_strategy(
    dfg::Engine& engine, dfg::runtime::StrategyKind kind,
    const char* expression) {
  engine.set_strategy(kind);
  try {
    return engine.evaluate(expression);
  } catch (const dfg::DeviceOutOfMemory& err) {
    std::printf("  %-10s: FAILED (%s)\n",
                dfg::runtime::strategy_name(kind), err.what());
    return std::nullopt;
  }
}

void explore(dfg::vcl::Device& device, const dfg::mesh::RectilinearMesh& mesh,
             const dfg::mesh::VectorField& field, const char* name,
             const char* expression) {
  std::printf("\n=== %s on %s ===\n", name, device.spec().name.c_str());

  // Analytical selection: predict every strategy's footprint up front.
  const dfg::dataflow::Network network(
      dfg::dataflow::build_network(expression));
  dfg::runtime::FieldBindings bindings;
  bindings.bind_mesh(mesh);
  bindings.bind("u", field.u);
  bindings.bind("v", field.v);
  bindings.bind("w", field.w);
  for (const auto kind : {dfg::runtime::StrategyKind::roundtrip,
                          dfg::runtime::StrategyKind::staged,
                          dfg::runtime::StrategyKind::fusion,
                          dfg::runtime::StrategyKind::streamed}) {
    try {
      const std::size_t predicted = dfg::runtime::estimate_high_water(
          network, bindings, mesh.cell_count(), kind);
      std::printf("  %-10s predicted footprint: %10s (%s)\n",
                  dfg::runtime::strategy_name(kind),
                  dfg::support::format_bytes(predicted).c_str(),
                  predicted <= device.memory().available() ? "fits"
                                                           : "too big");
    } catch (const dfg::KernelError&) {
      std::printf("  %-10s not applicable to this network\n",
                  dfg::runtime::strategy_name(kind));
    }
  }

  dfg::Engine engine(device);
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);
  try {
    const auto kind = dfg::runtime::select_strategy(
        network, bindings, mesh.cell_count(), device);
    engine.set_strategy(kind);
    const auto report = engine.evaluate(expression);
    std::printf("  planner selected '%s': sim %.5f s, high water %s\n",
                report.strategy.c_str(), report.sim_seconds,
                dfg::support::format_bytes(report.memory_high_water_bytes)
                    .c_str());
  } catch (const dfg::DeviceOutOfMemory&) {
    std::printf("  no strategy fits this device\n");
  }
}

}  // namespace

int main() {
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({48, 48, 320});
  std::printf("grid: %s (%zu cells)\n",
              dfg::mesh::to_string(mesh.dims()).c_str(), mesh.cell_count());
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  const std::size_t array_bytes = mesh.cell_count() * sizeof(float);

  // A device with plenty of memory: fusion wins outright.
  dfg::vcl::Device roomy(dfg::vcl::xeon_x5660_scaled());
  explore(roomy, mesh, field, "Q-criterion", dfg::expressions::kQCriterion);

  // A device that fits fusion's 8 arrays but not staged's ~28.
  dfg::vcl::DeviceSpec mid = dfg::vcl::tesla_m2050_scaled();
  mid.name = "constrained GPU (12 problem arrays)";
  mid.global_mem_bytes = 12 * array_bytes;
  dfg::vcl::Device mid_device(mid);
  explore(mid_device, mesh, field, "Q-criterion",
          dfg::expressions::kQCriterion);

  // A wide fan-in expression over six distinct inputs on a device that
  // holds only five problem arrays: fusion needs all six inputs plus the
  // output resident (7), staged peaks at 6 while the (e + f) operands join
  // the still-live a, b and intermediates, but roundtrip — which keeps
  // intermediates in host memory — never needs more than 3. This is why
  // the paper keeps the "slow" strategy around.
  dfg::vcl::DeviceSpec tiny = dfg::vcl::tesla_m2050_scaled();
  tiny.name = "tiny GPU (5 problem arrays)";
  tiny.global_mem_bytes = 5 * array_bytes + 1024;
  dfg::vcl::Device tiny_device(tiny);
  std::printf("\n=== wide fan-in composite on %s ===\n", tiny.name.c_str());
  dfg::Engine engine(tiny_device);
  engine.bind("a", field.u);
  engine.bind("b", field.v);
  engine.bind("c", field.w);
  engine.bind("d", field.u);
  engine.bind("e", field.v);
  engine.bind("f", field.w);
  for (const auto kind : {dfg::runtime::StrategyKind::fusion,
                          dfg::runtime::StrategyKind::staged,
                          dfg::runtime::StrategyKind::roundtrip}) {
    if (const auto report = try_strategy(
            engine, kind, "r = (a+b)*(c+d) + (e+f)*(a-b)")) {
      std::printf("  %-10s: OK, sim %.5f s, high water %s\n",
                  report->strategy.c_str(), report->sim_seconds,
                  dfg::support::format_bytes(report->memory_high_water_bytes)
                      .c_str());
      std::printf("  selected '%s'\n", report->strategy.c_str());
      break;
    }
  }
  return 0;
}
