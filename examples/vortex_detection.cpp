// Vortex detection on a Rayleigh-Taylor-like flow: the paper's application.
//
// Computes the three vortex-detection quantities (velocity magnitude,
// vorticity magnitude, Q-criterion) on a synthetic RT mixing-layer flow,
// compares the execution strategies, and renders pseudocolor mid-plane
// slices to PPM images — a miniature of the paper's Figure 7 rendering.
#include <cstdio>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "example_util.hpp"
#include "mesh/generators.hpp"
#include "vcl/catalog.hpp"

int main() {
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({96, 96, 96});
  std::printf("generating RT flow on %s (%zu cells)...\n",
              dfg::mesh::to_string(mesh.dims()).c_str(), mesh.cell_count());
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);

  dfg::vcl::Device device(dfg::vcl::xeon_x5660());
  dfg::Engine engine(device);
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);

  struct Quantity {
    const char* name;
    const char* expression;
    const char* image;
  };
  const Quantity quantities[] = {
      {"velocity magnitude", dfg::expressions::kVelocityMagnitude,
       "velocity_magnitude.ppm"},
      {"vorticity magnitude", dfg::expressions::kVorticityMagnitude,
       "vorticity_magnitude.ppm"},
      {"Q-criterion", dfg::expressions::kQCriterion, "q_criterion.ppm"},
  };

  for (const Quantity& q : quantities) {
    std::printf("\n=== %s ===\n", q.name);
    for (const auto kind : {dfg::runtime::StrategyKind::roundtrip,
                            dfg::runtime::StrategyKind::staged,
                            dfg::runtime::StrategyKind::fusion}) {
      engine.set_strategy(kind);
      const dfg::EvaluationReport report = engine.evaluate(q.expression);
      std::printf("%-10s: sim %.5f s | Dev-W %3zu Dev-R %3zu K-Exe %3zu | "
                  "mem %s\n",
                  report.strategy.c_str(), report.sim_seconds,
                  report.dev_writes, report.dev_reads, report.kernel_execs,
                  dfg::support::format_bytes(report.memory_high_water_bytes)
                      .c_str());
      if (kind == dfg::runtime::StrategyKind::fusion) {
        if (dfgex::write_slice_ppm(q.image, report.values, mesh.dims(),
                                   mesh.dims().nz / 2)) {
          std::printf("wrote mid-plane slice to %s\n", q.image);
        }
      }
    }
  }

  std::printf("\nvortex cells (Q > 0): ");
  engine.set_strategy(dfg::runtime::StrategyKind::fusion);
  const auto q_report = engine.evaluate(dfg::expressions::kQCriterion);
  std::size_t vortex_cells = 0;
  for (const float q : q_report.values) {
    if (q > 0.0f) ++vortex_cells;
  }
  std::printf("%zu of %zu (%.1f%%)\n", vortex_cells, q_report.values.size(),
              100.0 * static_cast<double>(vortex_cells) /
                  static_cast<double>(q_report.values.size()));
  return 0;
}
