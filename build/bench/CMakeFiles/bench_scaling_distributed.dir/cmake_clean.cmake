file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_distributed.dir/bench_scaling_distributed.cpp.o"
  "CMakeFiles/bench_scaling_distributed.dir/bench_scaling_distributed.cpp.o.d"
  "bench_scaling_distributed"
  "bench_scaling_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
