file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_device_events.dir/bench_table2_device_events.cpp.o"
  "CMakeFiles/bench_table2_device_events.dir/bench_table2_device_events.cpp.o.d"
  "bench_table2_device_events"
  "bench_table2_device_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_device_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
