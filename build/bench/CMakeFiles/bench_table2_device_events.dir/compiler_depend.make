# Empty compiler generated dependencies file for bench_table2_device_events.
# This may be replaced when dependencies are built.
