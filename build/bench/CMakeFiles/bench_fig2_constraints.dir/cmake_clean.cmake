file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_constraints.dir/bench_fig2_constraints.cpp.o"
  "CMakeFiles/bench_fig2_constraints.dir/bench_fig2_constraints.cpp.o.d"
  "bench_fig2_constraints"
  "bench_fig2_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
