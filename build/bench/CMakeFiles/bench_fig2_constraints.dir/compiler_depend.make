# Empty compiler generated dependencies file for bench_fig2_constraints.
# This may be replaced when dependencies are built.
