file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_distributed.dir/bench_fig7_distributed.cpp.o"
  "CMakeFiles/bench_fig7_distributed.dir/bench_fig7_distributed.cpp.o.d"
  "bench_fig7_distributed"
  "bench_fig7_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
