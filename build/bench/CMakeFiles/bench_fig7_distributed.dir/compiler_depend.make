# Empty compiler generated dependencies file for bench_fig7_distributed.
# This may be replaced when dependencies are built.
