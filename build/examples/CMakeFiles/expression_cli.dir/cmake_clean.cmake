file(REMOVE_RECURSE
  "CMakeFiles/expression_cli.dir/expression_cli.cpp.o"
  "CMakeFiles/expression_cli.dir/expression_cli.cpp.o.d"
  "expression_cli"
  "expression_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expression_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
