# Empty compiler generated dependencies file for expression_cli.
# This may be replaced when dependencies are built.
