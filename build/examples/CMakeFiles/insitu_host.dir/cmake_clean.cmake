file(REMOVE_RECURSE
  "CMakeFiles/insitu_host.dir/insitu_host.cpp.o"
  "CMakeFiles/insitu_host.dir/insitu_host.cpp.o.d"
  "insitu_host"
  "insitu_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
