# Empty dependencies file for insitu_host.
# This may be replaced when dependencies are built.
