# Empty dependencies file for vortex_detection.
# This may be replaced when dependencies are built.
