file(REMOVE_RECURSE
  "CMakeFiles/vortex_detection.dir/vortex_detection.cpp.o"
  "CMakeFiles/vortex_detection.dir/vortex_detection.cpp.o.d"
  "vortex_detection"
  "vortex_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vortex_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
