# Empty compiler generated dependencies file for distributed_qcriterion.
# This may be replaced when dependencies are built.
