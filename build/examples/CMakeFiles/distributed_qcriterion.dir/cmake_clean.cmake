file(REMOVE_RECURSE
  "CMakeFiles/distributed_qcriterion.dir/distributed_qcriterion.cpp.o"
  "CMakeFiles/distributed_qcriterion.dir/distributed_qcriterion.cpp.o.d"
  "distributed_qcriterion"
  "distributed_qcriterion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_qcriterion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
