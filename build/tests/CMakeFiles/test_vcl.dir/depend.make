# Empty dependencies file for test_vcl.
# This may be replaced when dependencies are built.
