file(REMOVE_RECURSE
  "CMakeFiles/test_vcl.dir/test_vcl.cpp.o"
  "CMakeFiles/test_vcl.dir/test_vcl.cpp.o.d"
  "test_vcl"
  "test_vcl.pdb"
  "test_vcl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
