file(REMOVE_RECURSE
  "CMakeFiles/test_derived_library.dir/test_derived_library.cpp.o"
  "CMakeFiles/test_derived_library.dir/test_derived_library.cpp.o.d"
  "test_derived_library"
  "test_derived_library.pdb"
  "test_derived_library[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_derived_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
