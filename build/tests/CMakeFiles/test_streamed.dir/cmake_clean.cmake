file(REMOVE_RECURSE
  "CMakeFiles/test_streamed.dir/test_streamed.cpp.o"
  "CMakeFiles/test_streamed.dir/test_streamed.cpp.o.d"
  "test_streamed"
  "test_streamed.pdb"
  "test_streamed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_streamed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
