# Empty compiler generated dependencies file for test_math_primitives.
# This may be replaced when dependencies are built.
