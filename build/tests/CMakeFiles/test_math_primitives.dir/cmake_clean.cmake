file(REMOVE_RECURSE
  "CMakeFiles/test_math_primitives.dir/test_math_primitives.cpp.o"
  "CMakeFiles/test_math_primitives.dir/test_math_primitives.cpp.o.d"
  "test_math_primitives"
  "test_math_primitives.pdb"
  "test_math_primitives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
