file(REMOVE_RECURSE
  "CMakeFiles/test_table2_events.dir/test_table2_events.cpp.o"
  "CMakeFiles/test_table2_events.dir/test_table2_events.cpp.o.d"
  "test_table2_events"
  "test_table2_events.pdb"
  "test_table2_events[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table2_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
