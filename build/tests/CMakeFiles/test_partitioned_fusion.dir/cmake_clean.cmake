file(REMOVE_RECURSE
  "CMakeFiles/test_partitioned_fusion.dir/test_partitioned_fusion.cpp.o"
  "CMakeFiles/test_partitioned_fusion.dir/test_partitioned_fusion.cpp.o.d"
  "test_partitioned_fusion"
  "test_partitioned_fusion.pdb"
  "test_partitioned_fusion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partitioned_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
