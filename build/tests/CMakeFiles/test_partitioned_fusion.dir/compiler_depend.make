# Empty compiler generated dependencies file for test_partitioned_fusion.
# This may be replaced when dependencies are built.
