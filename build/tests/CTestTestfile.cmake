# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_table2_events[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_vcl[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_dataflow[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_generator[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_strategies[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_reference[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_distrib[1]_include.cmake")
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_streamed[1]_include.cmake")
include("/root/repo/build/tests/test_math_primitives[1]_include.cmake")
include("/root/repo/build/tests/test_prune[1]_include.cmake")
include("/root/repo/build/tests/test_planner[1]_include.cmake")
include("/root/repo/build/tests/test_dot[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_partitioned_fusion[1]_include.cmake")
include("/root/repo/build/tests/test_derived_library[1]_include.cmake")
include("/root/repo/build/tests/test_serialization[1]_include.cmake")
