file(REMOVE_RECURSE
  "libdfgen.a"
)
