
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/dfgen.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/core/engine.cpp.o.d"
  "/root/repo/src/dataflow/builder.cpp" "src/CMakeFiles/dfgen.dir/dataflow/builder.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/dataflow/builder.cpp.o.d"
  "/root/repo/src/dataflow/dot.cpp" "src/CMakeFiles/dfgen.dir/dataflow/dot.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/dataflow/dot.cpp.o.d"
  "/root/repo/src/dataflow/network.cpp" "src/CMakeFiles/dfgen.dir/dataflow/network.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/dataflow/network.cpp.o.d"
  "/root/repo/src/dataflow/script_io.cpp" "src/CMakeFiles/dfgen.dir/dataflow/script_io.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/dataflow/script_io.cpp.o.d"
  "/root/repo/src/dataflow/spec.cpp" "src/CMakeFiles/dfgen.dir/dataflow/spec.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/dataflow/spec.cpp.o.d"
  "/root/repo/src/distrib/decomposition.cpp" "src/CMakeFiles/dfgen.dir/distrib/decomposition.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/distrib/decomposition.cpp.o.d"
  "/root/repo/src/distrib/dist_engine.cpp" "src/CMakeFiles/dfgen.dir/distrib/dist_engine.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/distrib/dist_engine.cpp.o.d"
  "/root/repo/src/distrib/ghost.cpp" "src/CMakeFiles/dfgen.dir/distrib/ghost.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/distrib/ghost.cpp.o.d"
  "/root/repo/src/expr/ast.cpp" "src/CMakeFiles/dfgen.dir/expr/ast.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/expr/ast.cpp.o.d"
  "/root/repo/src/expr/lexer.cpp" "src/CMakeFiles/dfgen.dir/expr/lexer.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/expr/lexer.cpp.o.d"
  "/root/repo/src/expr/parser.cpp" "src/CMakeFiles/dfgen.dir/expr/parser.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/expr/parser.cpp.o.d"
  "/root/repo/src/kernels/generator.cpp" "src/CMakeFiles/dfgen.dir/kernels/generator.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/kernels/generator.cpp.o.d"
  "/root/repo/src/kernels/primitives.cpp" "src/CMakeFiles/dfgen.dir/kernels/primitives.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/kernels/primitives.cpp.o.d"
  "/root/repo/src/kernels/program.cpp" "src/CMakeFiles/dfgen.dir/kernels/program.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/kernels/program.cpp.o.d"
  "/root/repo/src/kernels/source_printer.cpp" "src/CMakeFiles/dfgen.dir/kernels/source_printer.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/kernels/source_printer.cpp.o.d"
  "/root/repo/src/kernels/vm.cpp" "src/CMakeFiles/dfgen.dir/kernels/vm.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/kernels/vm.cpp.o.d"
  "/root/repo/src/mesh/catalog.cpp" "src/CMakeFiles/dfgen.dir/mesh/catalog.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/mesh/catalog.cpp.o.d"
  "/root/repo/src/mesh/generators.cpp" "src/CMakeFiles/dfgen.dir/mesh/generators.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/mesh/generators.cpp.o.d"
  "/root/repo/src/mesh/mesh.cpp" "src/CMakeFiles/dfgen.dir/mesh/mesh.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/mesh/mesh.cpp.o.d"
  "/root/repo/src/runtime/bindings.cpp" "src/CMakeFiles/dfgen.dir/runtime/bindings.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/runtime/bindings.cpp.o.d"
  "/root/repo/src/runtime/fusion.cpp" "src/CMakeFiles/dfgen.dir/runtime/fusion.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/runtime/fusion.cpp.o.d"
  "/root/repo/src/runtime/multidevice.cpp" "src/CMakeFiles/dfgen.dir/runtime/multidevice.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/runtime/multidevice.cpp.o.d"
  "/root/repo/src/runtime/planner.cpp" "src/CMakeFiles/dfgen.dir/runtime/planner.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/runtime/planner.cpp.o.d"
  "/root/repo/src/runtime/reference.cpp" "src/CMakeFiles/dfgen.dir/runtime/reference.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/runtime/reference.cpp.o.d"
  "/root/repo/src/runtime/roundtrip.cpp" "src/CMakeFiles/dfgen.dir/runtime/roundtrip.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/runtime/roundtrip.cpp.o.d"
  "/root/repo/src/runtime/slab.cpp" "src/CMakeFiles/dfgen.dir/runtime/slab.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/runtime/slab.cpp.o.d"
  "/root/repo/src/runtime/staged.cpp" "src/CMakeFiles/dfgen.dir/runtime/staged.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/runtime/staged.cpp.o.d"
  "/root/repo/src/runtime/strategy.cpp" "src/CMakeFiles/dfgen.dir/runtime/strategy.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/runtime/strategy.cpp.o.d"
  "/root/repo/src/runtime/streamed.cpp" "src/CMakeFiles/dfgen.dir/runtime/streamed.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/runtime/streamed.cpp.o.d"
  "/root/repo/src/support/parallel.cpp" "src/CMakeFiles/dfgen.dir/support/parallel.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/support/parallel.cpp.o.d"
  "/root/repo/src/support/string_util.cpp" "src/CMakeFiles/dfgen.dir/support/string_util.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/support/string_util.cpp.o.d"
  "/root/repo/src/vcl/buffer.cpp" "src/CMakeFiles/dfgen.dir/vcl/buffer.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/vcl/buffer.cpp.o.d"
  "/root/repo/src/vcl/catalog.cpp" "src/CMakeFiles/dfgen.dir/vcl/catalog.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/vcl/catalog.cpp.o.d"
  "/root/repo/src/vcl/cost_model.cpp" "src/CMakeFiles/dfgen.dir/vcl/cost_model.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/vcl/cost_model.cpp.o.d"
  "/root/repo/src/vcl/device.cpp" "src/CMakeFiles/dfgen.dir/vcl/device.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/vcl/device.cpp.o.d"
  "/root/repo/src/vcl/pipeline.cpp" "src/CMakeFiles/dfgen.dir/vcl/pipeline.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/vcl/pipeline.cpp.o.d"
  "/root/repo/src/vcl/profiling.cpp" "src/CMakeFiles/dfgen.dir/vcl/profiling.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/vcl/profiling.cpp.o.d"
  "/root/repo/src/vcl/queue.cpp" "src/CMakeFiles/dfgen.dir/vcl/queue.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/vcl/queue.cpp.o.d"
  "/root/repo/src/vcl/trace.cpp" "src/CMakeFiles/dfgen.dir/vcl/trace.cpp.o" "gcc" "src/CMakeFiles/dfgen.dir/vcl/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
