# Empty dependencies file for dfgen.
# This may be replaced when dependencies are built.
